package dist

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"minvn/internal/machine"
	"minvn/internal/mc"
	"minvn/internal/obs/trace"
)

// Job describes one distributed check.
type Job struct {
	Config machine.Config
	// Options carries the search bounds and telemetry hooks. BFS only
	// (the level-synchronized rounds ARE breadth-first); MaxStates
	// applies at level granularity — the run stops at the first level
	// boundary at or past the bound rather than mid-level; Observer is
	// unsupported (state storage happens in worker processes — set
	// Occupancy for the built-in profile); traces are limited to the
	// single terminal state, exactly like DisableTraces.
	Options mc.Options
	// Workers is the loopback fleet size when Peers is empty: the
	// coordinator spawns that many in-process workers on 127.0.0.1.
	Workers int
	// Peers, when non-empty, is the base URLs of already-running worker
	// daemons (cmd/vnworkerd), one per worker; Workers is ignored.
	Peers []string
	// Occupancy asks every worker to run the per-VN occupancy profiler
	// over its stored states; the merged aggregate lands in
	// Result.Stats.Occupancy as an *icn.OccupancyStats.
	Occupancy bool
}

// WorkerLostError reports a worker that stopped responding (or whose
// frontier sends could not be delivered). The coordinator cancels the
// whole fleet and fails the job rather than waiting on a peer that
// will never settle — a lost shard owner means lost states, so no
// partial result is sound.
type WorkerLostError struct {
	Worker int    // worker index the failure was observed at
	URL    string // that worker's base URL
	Op     string // "init", "expand", "settle", or "frontier-send"
	Err    error
}

func (e *WorkerLostError) Error() string {
	return fmt.Sprintf("dist: worker %d (%s) lost during %s: %v", e.Worker, e.URL, e.Op, e.Err)
}

func (e *WorkerLostError) Unwrap() error { return e.Err }

// statusError is a non-200 control response.
type statusError struct {
	Code int
	Body string
}

func (e *statusError) Error() string { return fmt.Sprintf("%d: %s", e.Code, e.Body) }

// Check runs the distributed search and blocks until it finishes. The
// returned Result matches the in-process engines' contract — context
// cancellation yields Outcome Canceled with a nil error — while infra
// failures (spec errors, worker loss, accounting mismatches) yield a
// non-nil error alongside a Canceled result, so callers can tell "the
// user stopped it" from "the fleet broke".
func Check(ctx context.Context, job Job) (mc.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	opts := job.Options
	if opts.Strategy != mc.BFS {
		return mc.Result{}, fmt.Errorf("dist: only BFS is supported (the distributed rounds are level-synchronized)")
	}
	if opts.Observer != nil {
		return mc.Result{}, fmt.Errorf("dist: Observer is unsupported (states are stored in worker processes); set Job.Occupancy")
	}
	if opts.MaxStates < 0 {
		opts.MaxStates = 0
	}
	if opts.MaxDepth < 0 {
		opts.MaxDepth = 0
	}
	spec, err := SpecFromConfig(job.Config)
	if err != nil {
		return mc.Result{}, err
	}

	peers := job.Peers
	if len(peers) == 0 {
		n := job.Workers
		if n < 1 {
			n = runtime.GOMAXPROCS(0)
		}
		loop, err := spawnLoopback(n)
		if err != nil {
			return mc.Result{}, err
		}
		defer loop.close()
		peers = loop.urls
	}

	c := &coord{
		job: job, opts: opts, start: start, peers: peers, n: len(peers),
		runID:  newRunID(),
		client: &http.Client{},
		latest: make([]statsBlock, len(peers)),
	}
	tc, _ := trace.TraceContextFrom(ctx)
	c.lane = opts.Trace.Lane(tc.LanePrefix() + "dist coordinator")
	c.workerLanes = make([]*trace.Lane, c.n)
	for i := range c.workerLanes {
		c.workerLanes[i] = opts.Trace.Lane(tc.LanePrefix() + fmt.Sprintf("dist worker %d", i))
	}
	res, err := c.run(ctx, spec)
	res.Duration = time.Since(start)
	return res, err
}

// loopbackFleet is a set of in-process workers on 127.0.0.1, the
// default deployment: real HTTP servers exercising the full wire
// path, without any daemon to operate.
type loopbackFleet struct {
	urls []string
	srvs []*http.Server
}

func spawnLoopback(n int) (*loopbackFleet, error) {
	f := &loopbackFleet{}
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, fmt.Errorf("dist: spawn loopback worker %d: %w", i, err)
		}
		srv := &http.Server{Handler: NewWorker().Handler()}
		go srv.Serve(ln)
		f.urls = append(f.urls, "http://"+ln.Addr().String())
		f.srvs = append(f.srvs, srv)
	}
	return f, nil
}

func (f *loopbackFleet) close() {
	for _, s := range f.srvs {
		s.Close()
	}
}

func newRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "dist-run"
	}
	return hex.EncodeToString(b[:])
}

type coord struct {
	job   Job
	opts  mc.Options
	start time.Time
	peers []string
	n     int
	runID string

	client      *http.Client
	latest      []statsBlock // each worker's most recent cumulative block
	lane        *trace.Lane
	workerLanes []*trace.Lane
}

func (c *coord) postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxControlBody))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(data))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// each runs op against every worker concurrently and returns the
// lowest-indexed failure, wrapped as a WorkerLostError.
func (c *coord) each(ctx context.Context, op string, f func(ctx context.Context, i int) error) error {
	errs := make([]error, c.n)
	var wg sync.WaitGroup
	for i := 0; i < c.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f(ctx, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return &WorkerLostError{Worker: i, URL: c.peers[i], Op: op, Err: err}
		}
	}
	return nil
}

// cancelAll best-effort tears the fleet down. It runs on its own
// deadline, not ctx — the usual reason to be here is that ctx is
// already dead.
func (c *coord) cancelAll() {
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < c.n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.postJSON(cctx, c.peers[i]+"/dist/v1/cancel", cancelReq{RunID: c.runID}, nil)
		}(i)
	}
	wg.Wait()
}

func (c *coord) snapshot(frontier int, final bool) mc.Snapshot {
	return mergeBlocks(c.latest, time.Since(c.start).Seconds(), c.opts, frontier, final)
}

// finish assembles the final Result from the latest settled blocks.
func (c *coord) finish(outcome mc.Outcome, frontier int) mc.Result {
	res := mc.Result{Outcome: outcome}
	snap := c.snapshot(frontier, true)
	res.States = snap.States
	res.Rules = int(snap.Expansions)
	res.MaxDepth = snap.MaxDepth
	res.Stats = snap
	c.lane.InstantArg("outcome/"+outcome.Tag(), "states", int64(res.States))
	if c.opts.Progress != nil {
		c.opts.Progress(snap)
	}
	return res
}

func (c *coord) run(ctx context.Context, spec *ModelSpec) (mc.Result, error) {
	// Initialize the fleet: each worker builds the system, settles its
	// owned initial states at depth 0, and reports its first block.
	initErr := c.each(ctx, "init", func(ctx context.Context, i int) error {
		sp := c.workerLanes[i].Start("init")
		defer sp.End()
		var out initResp
		err := c.postJSON(ctx, c.peers[i]+"/dist/v1/init", initReq{
			RunID: c.runID, Self: i, Workers: c.n,
			Spec: spec, Store: c.opts.Store.String(),
			Occupancy: c.job.Occupancy, Peers: c.peers,
		}, &out)
		if err != nil {
			return err
		}
		c.latest[i] = out.Stats
		return nil
	})
	if initErr != nil {
		c.cancelAll()
		if ctx.Err() != nil {
			res := c.finish(mc.Canceled, 0)
			res.Message = ctx.Err().Error()
			return res, nil
		}
		res := c.finish(mc.Canceled, 0)
		res.Message = initErr.Error()
		return res, initErr
	}

	frontier := 0
	for i := range c.latest {
		frontier += c.latest[i].Frontier
	}

	for depth := 0; ; depth++ {
		if err := ctx.Err(); err != nil {
			c.cancelAll()
			res := c.finish(mc.Canceled, frontier)
			res.Message = err.Error()
			return res, nil
		}
		if frontier == 0 {
			return c.finish(mc.Complete, 0), nil
		}
		if c.opts.MaxDepth > 0 && depth >= c.opts.MaxDepth {
			c.cancelAll()
			return c.finish(mc.Bounded, frontier), nil
		}
		if states := c.totalStates(); c.opts.MaxStates > 0 && states >= c.opts.MaxStates {
			c.cancelAll()
			return c.finish(mc.Bounded, frontier), nil
		}

		levelSpan := c.lane.Start(fmt.Sprintf("level %d", depth))

		// Expand: every worker expands its share of the level, shipping
		// non-owned successors. All sends are acknowledged before each
		// response, so afterwards every candidate is at its owner.
		expandResps := make([]expandResp, c.n)
		expandErr := c.each(ctx, "expand", func(ctx context.Context, i int) error {
			sp := c.workerLanes[i].Start("expand")
			defer sp.End()
			return c.postJSON(ctx, c.peers[i]+"/dist/v1/expand",
				expandReq{RunID: c.runID, Depth: depth}, &expandResps[i])
		})
		if expandErr != nil {
			levelSpan.End()
			c.cancelAll()
			res := c.finish(mc.Canceled, frontier)
			if err := ctx.Err(); err != nil {
				res.Message = err.Error()
				return res, nil
			}
			res.Message = expandErr.Error()
			return res, expandErr
		}

		// A terminal (deadlock/violation/capacity) ends the run. The
		// lowest worker index wins for determinism; counts in the result
		// are from the last settled level boundary.
		for i := 0; i < c.n; i++ {
			if t := expandResps[i].Terminal; t != nil {
				levelSpan.EndArg("terminal", int64(i))
				c.cancelAll()
				var oc mc.Outcome
				switch t.Kind {
				case "violation":
					oc = mc.Violation
				case "capacity":
					oc = mc.Capacity
				default:
					oc = mc.Deadlock
				}
				res := c.finish(oc, frontier)
				res.Message = t.Message
				if t.State != nil {
					res.Trace = [][]byte{t.State}
				}
				return res, nil
			}
		}
		for i := 0; i < c.n; i++ {
			if msg := expandResps[i].SendFailed; msg != "" {
				levelSpan.End()
				c.cancelAll()
				lost := &WorkerLostError{
					Worker: i, URL: c.peers[i], Op: "frontier-send",
					Err: fmt.Errorf("%s", msg),
				}
				res := c.finish(mc.Canceled, frontier)
				res.Message = lost.Error()
				return res, lost
			}
		}

		// In-flight accounting: worker i must have received exactly the
		// sum of what every peer reported sending it.
		expect := make([]int, c.n)
		for i := 0; i < c.n; i++ {
			if len(expandResps[i].Sent) != c.n {
				levelSpan.End()
				c.cancelAll()
				err := fmt.Errorf("dist: worker %d reported %d send counters for a %d-worker fleet",
					i, len(expandResps[i].Sent), c.n)
				res := c.finish(mc.Canceled, frontier)
				res.Message = err.Error()
				return res, err
			}
			for j, sent := range expandResps[i].Sent {
				expect[j] += sent
			}
		}

		// Settle: each worker dedups its candidates into depth+1 and
		// reports its new cumulative block.
		settleResps := make([]settleResp, c.n)
		settleErr := c.each(ctx, "settle", func(ctx context.Context, i int) error {
			sp := c.workerLanes[i].Start("settle")
			defer sp.End()
			return c.postJSON(ctx, c.peers[i]+"/dist/v1/settle",
				settleReq{RunID: c.runID, Depth: depth, Expect: expect[i]}, &settleResps[i])
		})
		if settleErr != nil {
			levelSpan.End()
			c.cancelAll()
			res := c.finish(mc.Canceled, frontier)
			if err := ctx.Err(); err != nil {
				res.Message = err.Error()
				return res, nil
			}
			var st *statusError
			if errors.As(settleErr, &st) && st.Code == http.StatusInsufficientStorage {
				// A visited-set capacity limit, not a lost worker.
				capRes := c.finish(mc.Capacity, frontier)
				capRes.Message = st.Body
				return capRes, nil
			}
			res.Message = settleErr.Error()
			return res, settleErr
		}
		frontier = 0
		for i := 0; i < c.n; i++ {
			c.latest[i] = settleResps[i].Stats
			frontier += settleResps[i].Frontier
		}
		levelSpan.EndArg("frontier", int64(frontier))
		if c.opts.Progress != nil {
			c.opts.Progress(c.snapshot(frontier, false))
		}
	}
}

func (c *coord) totalStates() int {
	t := 0
	for i := range c.latest {
		t += c.latest[i].States
	}
	return t
}
