package dist

import (
	"minvn/internal/icn"
	"minvn/internal/mc"
	"minvn/internal/obs"
	"minvn/internal/obs/health"
)

// mergeBlocks folds every worker's latest cumulative block into one
// mc.Snapshot. Each block is cumulative, so the merge is a plain sum
// of the latest block per worker — a block reported twice replaces
// itself rather than double-counting — and the derived rates are
// recomputed from the summed counters over the coordinator's own
// elapsed clock (never by averaging per-worker rates, whose elapsed
// denominators differ), with mc.SanitizeRate guarding the zero-elapsed
// and zero-probe corners so a merged snapshot can never carry NaN or
// ±Inf into JSON artifacts.
func mergeBlocks(blocks []statsBlock, elapsed float64, opts mc.Options, frontier int, final bool) mc.Snapshot {
	if elapsed < 0 {
		elapsed = 0
	}
	s := mc.Snapshot{
		Strategy:       mc.BFS.String(),
		Store:          opts.Store.String(),
		ElapsedSeconds: elapsed,
		Frontier:       frontier,
		HeapBytes:      obs.HeapBytes(),
		Final:          final,
	}
	var probes int64
	var hr *health.Report
	var occ *icn.OccupancyStats
	for i := range blocks {
		b := &blocks[i]
		s.States += b.States
		s.Expansions += b.Expansions
		s.Generated += b.Generated
		s.DedupHits += b.DedupHits
		probes += b.Probes
		if b.MaxDepth > s.MaxDepth {
			s.MaxDepth = b.MaxDepth
		}
		for len(s.DepthHistogram) < len(b.DepthHist) {
			s.DepthHistogram = append(s.DepthHistogram, 0)
		}
		for d, v := range b.DepthHist {
			s.DepthHistogram[d] += v
		}
		if len(b.Rules) > 0 {
			if s.RuleFirings == nil {
				s.RuleFirings = make(map[string]int64, len(b.Rules))
			}
			for k, v := range b.Rules {
				s.RuleFirings[k] += v
			}
		}
		if b.Health != nil {
			if hr == nil {
				hr = new(health.Report)
			}
			hr.Merge(b.Health)
		}
		if b.Occupancy != nil {
			if occ == nil {
				occ = new(icn.OccupancyStats)
			}
			occ.Merge(b.Occupancy)
		}
	}
	if probes > 0 {
		s.DedupHitRate = mc.SanitizeRate(float64(s.DedupHits) / float64(probes))
	}
	if elapsed > 0 {
		s.StatesPerSec = mc.SanitizeRate(float64(s.States) / elapsed)
	}
	s.Health = hr
	if occ != nil {
		s.Occupancy = occ
	}
	return s
}
