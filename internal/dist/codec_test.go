package dist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
)

func mkBatch(from, depth int, seq uint64, states ...string) *batch {
	b := &batch{From: from, Depth: depth, Seq: seq}
	for _, s := range states {
		b.States = append(b.States, []byte(s))
	}
	return b
}

func TestFrontierRoundTrip(t *testing.T) {
	cases := []*batch{
		mkBatch(0, 0, 0),
		mkBatch(3, 7, 42, "alpha", "", "gamma"),
		mkBatch(1, 2, 3, strings.Repeat("s", MaxEntryBytes)),
	}
	for _, in := range cases {
		data, err := encodeBatch(in)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		out, err := decodeBatch(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if out.From != in.From || out.Depth != in.Depth || out.Seq != in.Seq ||
			len(out.States) != len(in.States) {
			t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
		}
		for i := range in.States {
			if !bytes.Equal(out.States[i], in.States[i]) {
				t.Fatalf("state %d mismatch", i)
			}
		}
	}
}

func TestFrontierDecodeRejectsAbuse(t *testing.T) {
	valid, err := encodeBatch(mkBatch(1, 2, 3, "state-a", "state-b"))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		// Every strict prefix must fail cleanly — no panic, no success.
		for i := 0; i < len(valid); i++ {
			if _, err := decodeBatch(valid[:i]); err == nil {
				t.Fatalf("decode accepted %d-byte prefix of a %d-byte batch", i, len(valid))
			}
		}
	})

	t.Run("trailing-bytes", func(t *testing.T) {
		if _, err := decodeBatch(append(append([]byte(nil), valid...), 0)); err == nil {
			t.Fatal("decode accepted trailing bytes")
		}
	})

	t.Run("bad-magic", func(t *testing.T) {
		bad := append([]byte(nil), valid...)
		bad[0] ^= 0xff
		if _, err := decodeBatch(bad); err == nil {
			t.Fatal("decode accepted corrupted magic")
		}
	})

	t.Run("bad-version", func(t *testing.T) {
		bad := []byte(frontierMagic)
		bad = binary.AppendUvarint(bad, 99)
		if _, err := decodeBatch(bad); err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("want version error, got %v", err)
		}
	})

	t.Run("oversized-count", func(t *testing.T) {
		// A header claiming 2^40 entries must be rejected by the cap
		// check before any allocation, as a typed *LimitError.
		hdr := []byte(frontierMagic)
		hdr = binary.AppendUvarint(hdr, frontierVersion)
		hdr = binary.AppendUvarint(hdr, 0)     // from
		hdr = binary.AppendUvarint(hdr, 0)     // depth
		hdr = binary.AppendUvarint(hdr, 0)     // seq
		hdr = binary.AppendUvarint(hdr, 1<<40) // count
		_, err := decodeBatch(hdr)
		var le *LimitError
		if !errors.As(err, &le) || le.Section != "entries" || le.Max != MaxBatchEntries {
			t.Fatalf("want entries LimitError, got %v", err)
		}
	})

	t.Run("oversized-entry", func(t *testing.T) {
		hdr := []byte(frontierMagic)
		hdr = binary.AppendUvarint(hdr, frontierVersion)
		hdr = binary.AppendUvarint(hdr, 0)
		hdr = binary.AppendUvarint(hdr, 0)
		hdr = binary.AppendUvarint(hdr, 0)
		hdr = binary.AppendUvarint(hdr, 1)               // one entry
		hdr = binary.AppendUvarint(hdr, MaxEntryBytes+1) // too long
		_, err := decodeBatch(hdr)
		var le *LimitError
		if !errors.As(err, &le) || le.Section != "entry bytes" {
			t.Fatalf("want entry-bytes LimitError, got %v", err)
		}
	})

	t.Run("oversized-batch", func(t *testing.T) {
		if _, err := decodeBatch(make([]byte, MaxBatchBytes+1)); err == nil {
			t.Fatal("decode accepted an over-cap batch body")
		}
	})

	t.Run("encode-too-many-entries", func(t *testing.T) {
		b := &batch{States: make([][]byte, MaxBatchEntries+1)}
		_, err := encodeBatch(b)
		var le *LimitError
		if !errors.As(err, &le) || le.Section != "entries" {
			t.Fatalf("want entries LimitError, got %v", err)
		}
	})
}
