// Package dist is the distributed explicit-state search engine: a
// coordinator drives a fleet of worker processes, each of which owns a
// deterministic hash range of state-fingerprint space (mc.OwnerOf),
// expands the states it owns, and ships non-owned successors to their
// owners as batched frontier messages over a length-prefixed HTTP wire
// codec. It is the process-level promotion of the thread-level
// partition in mc's sharded visited set — the step the ROADMAP names
// from single-node search to fleet-scale runs.
//
// # Search structure
//
// The search is a level-synchronized distributed BFS. For each depth d
// the coordinator tells every worker to expand its depth-d frontier
// (workers forward each non-owned successor to its owner as they go),
// then to settle: deduplicate the accumulated depth-d+1 candidates
// against the worker's visited store and report cumulative statistics.
// Termination detection is distributed quiescence with in-flight
// accounting — every frontier batch is acknowledged before a worker
// reports its expansion done, expand responses carry per-peer sent
// counts, and the settle request carries the entry count each worker
// must have received, so a lost or duplicated delivery is detected at
// the level boundary rather than silently corrupting the search. The
// run completes when every worker's next frontier is empty.
//
// # Parity
//
// For runs that end Complete, or bounded only by MaxDepth, every
// pinned quantity — outcome, state count, max depth, expansion count,
// rule firings, depth histogram, dedup counters, stripe histograms,
// and per-VN occupancy aggregates — is independent of the order states
// are stored in, because each distinct state is probed and stored at
// exactly one owner and each stored state below the bound is expanded
// exactly once. The distributed parity suite therefore pins them
// bit-identical to the pipelined engine. MaxStates is the exception:
// it applies at level granularity (the run stops at the first level
// boundary at or past the bound), so state-bounded distributed runs
// are reproducible but not comparable to the sequential engine's
// mid-level cut — which is why the serving layer keys its result cache
// on engine=dist while every other engine remains a pure perf knob.
package dist

import (
	"encoding/json"
	"fmt"

	"minvn/internal/machine"
	"minvn/internal/protocol"
)

// ModelSpec is a transportable machine.Config: everything a worker
// needs to rebuild the identical transition system, with the compiled
// protocol carried as its canonical protocol.Encode document. Workers
// rebuild through the hardened protocol.Decode, so an oversized or
// malformed spec is rejected at the wire with a *protocol.LimitError
// rather than trusted.
type ModelSpec struct {
	Protocol     json.RawMessage `json:"protocol"`
	Caches       int             `json:"caches"`
	Dirs         int             `json:"dirs"`
	Addrs        int             `json:"addrs"`
	L2s          int             `json:"l2s,omitempty"`
	VN           map[string]int  `json:"vn"`
	NumVNs       int             `json:"num_vns"`
	GlobalCap    int             `json:"global_cap,omitempty"`
	LocalCap     int             `json:"local_cap,omitempty"`
	PointToPoint bool            `json:"point_to_point,omitempty"`
	P2PVariant   int             `json:"p2p_variant,omitempty"`
	NoSymmetry   bool            `json:"no_symmetry,omitempty"`
	CoreEvents   []string        `json:"core_events,omitempty"`
	Invariants   bool            `json:"invariants,omitempty"`
	Permissions  map[string]int  `json:"permissions,omitempty"`
}

// SpecFromConfig captures cfg as a wire spec. The protocol is
// re-encoded canonically, so two configs over the same protocol
// produce byte-identical specs regardless of how the protocol was
// built.
func SpecFromConfig(cfg machine.Config) (*ModelSpec, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("dist: no protocol in config")
	}
	canon, err := protocol.Encode(cfg.Protocol)
	if err != nil {
		return nil, fmt.Errorf("dist: encode protocol: %w", err)
	}
	s := &ModelSpec{
		Protocol: canon,
		Caches:   cfg.Caches, Dirs: cfg.Dirs, Addrs: cfg.Addrs, L2s: cfg.L2s,
		VN: cfg.VN, NumVNs: cfg.NumVNs,
		GlobalCap: cfg.GlobalCap, LocalCap: cfg.LocalCap,
		PointToPoint: cfg.PointToPoint, P2PVariant: cfg.P2PVariant,
		NoSymmetry: cfg.NoSymmetry, Invariants: cfg.Invariants,
	}
	for _, ev := range cfg.CoreEvents {
		s.CoreEvents = append(s.CoreEvents, string(ev))
	}
	if cfg.Permissions != nil {
		s.Permissions = make(map[string]int, len(cfg.Permissions))
		for k, v := range cfg.Permissions {
			s.Permissions[k] = int(v)
		}
	}
	return s, nil
}

// Build rebuilds the executable system. Every worker calling Build on
// the same spec gets the same transition system, canonicalizer, and
// state encoding — the property the whole ownership scheme rests on.
func (s *ModelSpec) Build() (*machine.System, error) {
	p, err := protocol.Decode(s.Protocol)
	if err != nil {
		return nil, fmt.Errorf("dist: decode protocol: %w", err)
	}
	cfg := machine.Config{
		Protocol: p,
		Caches:   s.Caches, Dirs: s.Dirs, Addrs: s.Addrs, L2s: s.L2s,
		VN: s.VN, NumVNs: s.NumVNs,
		GlobalCap: s.GlobalCap, LocalCap: s.LocalCap,
		PointToPoint: s.PointToPoint, P2PVariant: s.P2PVariant,
		NoSymmetry: s.NoSymmetry, Invariants: s.Invariants,
	}
	for _, ev := range s.CoreEvents {
		cfg.CoreEvents = append(cfg.CoreEvents, protocol.CoreEvent(ev))
	}
	if s.Permissions != nil {
		cfg.Permissions = make(map[string]machine.Permission, len(s.Permissions))
		for k, v := range s.Permissions {
			cfg.Permissions[k] = machine.Permission(v)
		}
	}
	return machine.New(cfg)
}
