// Package protocol defines the formal model of a directory cache
// coherence protocol used throughout this repository: static message
// names with types (paper §II-C), cache and directory controllers as
// tabular finite state machines over stable and transient states
// (paper §II-A, Figs. 1–2), protocol stalls (paper §II-E), and an
// action vocabulary rich enough to express the MOESIF family and the
// CHI-style protocols the paper analyzes.
//
// A Protocol value is purely static: it is the input both to the
// static analysis (package analysis, package vnassign) and to the
// executable semantics (package machine) that the model checker
// explores.
package protocol

import "fmt"

// MsgType classifies static message names (paper §II-C): requests go
// cache→directory, forwarded requests directory→cache, and responses
// either way, split into data and control responses.
type MsgType int

const (
	Request MsgType = iota
	FwdRequest
	DataResponse
	CtrlResponse
)

var msgTypeNames = [...]string{"Request", "FwdRequest", "DataResponse", "CtrlResponse"}

func (t MsgType) String() string {
	if t < 0 || int(t) >= len(msgTypeNames) {
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
	return msgTypeNames[t]
}

// IsResponse reports whether t is a data or control response.
func (t MsgType) IsResponse() bool { return t == DataResponse || t == CtrlResponse }

// AckRole describes how a message participates in invalidation-ack
// counting at the requesting cache.
type AckRole int

const (
	// AckNone: the message plays no role in ack counting.
	AckNone AckRole = iota
	// AckCarrier: the message can carry an ack count (e.g. Data from
	// the directory, telling the requestor how many Inv-Acks to expect).
	AckCarrier
	// AckUnit: the message counts as one received ack (e.g. Inv-Ack).
	AckUnit
)

// QualKind declares which qualifier dimension refines the reception of
// a message, mirroring the split columns of the Primer tables
// ("Data from Dir (ack=0)" vs "(ack>0)", "PutS-Last" vs "NonLast", …).
type QualKind int

const (
	// QualNone: the message is received unqualified.
	QualNone QualKind = iota
	// QualDataSource: resolves to AckZero / AckPositive based on the
	// effective outstanding-ack count after applying the message's
	// carried ack count (covers both "Data from Dir" and "Data from
	// Owner" columns of the Primer tables, which behave identically).
	QualDataSource
	// QualAckUnit: resolves to LastAck / NotLastAck based on the
	// receiver's outstanding-ack counter.
	QualAckUnit
	// QualOwnership: resolves to FromOwner / FromNonOwner based on the
	// directory's owner pointer (e.g. PutM).
	QualOwnership
	// QualLastSharer: resolves to LastSharer / NotLastSharer based on
	// the directory's sharer list (e.g. PutS).
	QualLastSharer
)

// Qualifier refines a message reception event.
type Qualifier int

const (
	QNone Qualifier = iota
	QAckZero
	QAckPositive
	QFromOwner
	QFromNonOwner
	QLastAck
	QNotLastAck
	QLastSharer
	QNotLastSharer
)

var qualifierNames = [...]string{
	"", "ack=0", "ack>0", "from-owner", "from-nonowner",
	"last-ack", "ack", "last-sharer", "non-last-sharer",
}

func (q Qualifier) String() string {
	if q < 0 || int(q) >= len(qualifierNames) {
		return fmt.Sprintf("Qualifier(%d)", int(q))
	}
	return qualifierNames[q]
}

// Qualifiers lists the qualifier values a QualKind can resolve to.
func (k QualKind) Qualifiers() []Qualifier {
	switch k {
	case QualDataSource:
		return []Qualifier{QAckZero, QAckPositive}
	case QualAckUnit:
		return []Qualifier{QLastAck, QNotLastAck}
	case QualOwnership:
		return []Qualifier{QFromOwner, QFromNonOwner}
	case QualLastSharer:
		return []Qualifier{QLastSharer, QNotLastSharer}
	default:
		return []Qualifier{QNone}
	}
}

// MsgLevel identifies the traffic tier a message travels on. Flat
// one-level protocols use LevelInner for everything. In a two-level
// composite (Protocol.L2 != nil), inner messages flow between the L1
// caches and the L2 home, outer messages between the L2 home and the
// outer directory; the machine package routes ToDir by level.
type MsgLevel int

const (
	// LevelInner: cache ↔ (inner) home traffic; the default.
	LevelInner MsgLevel = iota
	// LevelOuter: L2 home ↔ outer directory traffic.
	LevelOuter
)

func (l MsgLevel) String() string {
	if l == LevelOuter {
		return "outer"
	}
	return "inner"
}

// Message is a static message name with its classification.
type Message struct {
	Name  string
	Type  MsgType
	Ack   AckRole
	Qual  QualKind
	Level MsgLevel
}

// CoreEvent is a processor-initiated event at a cache controller.
type CoreEvent string

const (
	Load        CoreEvent = "Load"
	Store       CoreEvent = "Store"
	Replacement CoreEvent = "Replacement"
)

// CoreEvents lists all core events in table order.
var CoreEvents = []CoreEvent{Load, Store, Replacement}

// Event is a column of a controller table: either a core event or the
// reception of a (possibly qualified) message. Exactly one of Core and
// Msg is non-empty. Event is comparable and usable as a map key.
type Event struct {
	Core CoreEvent
	Msg  string
	Qual Qualifier
}

// CoreEv returns the event for a core (processor) event.
func CoreEv(c CoreEvent) Event { return Event{Core: c} }

// MsgEv returns the event for receiving message name unqualified.
func MsgEv(name string) Event { return Event{Msg: name} }

// MsgQualEv returns the event for receiving message name with
// qualifier q.
func MsgQualEv(name string, q Qualifier) Event { return Event{Msg: name, Qual: q} }

// IsCore reports whether the event is processor-initiated.
func (e Event) IsCore() bool { return e.Core != "" }

func (e Event) String() string {
	if e.IsCore() {
		return string(e.Core)
	}
	if e.Qual == QNone {
		return e.Msg
	}
	return e.Msg + "(" + e.Qual.String() + ")"
}

// Dest identifies the destination of a sent message, resolved at run
// time by the machine package.
type Dest int

const (
	// ToDir: the home directory of the message's address.
	ToDir Dest = iota
	// ToReq: the requestor cache recorded in the message being
	// processed (for core events: the cache itself acts as requestor
	// of the new message).
	ToReq
	// ToOwner: the owner recorded at the directory.
	ToOwner
	// ToSharers: every sharer recorded at the directory except the
	// requestor (one copy each).
	ToSharers
	// ToSaved: the requestor recorded earlier by ARecordSaved (cache
	// only). Non-blocking caches use it to answer a forwarded request
	// that arrived while their own transaction was still in flight.
	// Sending to ToSaved clears the register.
	ToSaved
	// ToSelf: the sending endpoint itself. The message re-enters the
	// sender's own input queue through the network, which is how a
	// non-stalling controller requeues a message it cannot process yet
	// (the xform package's stall-split) — reception is deferred without
	// blocking the queue head.
	ToSelf
)

var destNames = [...]string{"Dir", "Req", "Owner", "Sharers", "Saved", "Self"}

func (d Dest) String() string {
	if d < 0 || int(d) >= len(destNames) {
		return fmt.Sprintf("Dest(%d)", int(d))
	}
	return destNames[d]
}

// ActionKind enumerates the bookkeeping vocabulary of the tables.
type ActionKind int

const (
	// ASend sends Msg to To. WithAcks requests that the outgoing
	// message carry an ack count equal to |sharers \ {requestor}| at
	// the directory.
	ASend ActionKind = iota
	// ASetOwnerToReq records the requestor as owner (directory).
	ASetOwnerToReq
	// AClearOwner clears the owner pointer (directory).
	AClearOwner
	// AAddReqToSharers adds the requestor to the sharer list.
	AAddReqToSharers
	// AAddOwnerToSharers adds the current owner to the sharer list.
	AAddOwnerToSharers
	// ARemoveReqFromSharers removes the requestor from the sharer list.
	ARemoveReqFromSharers
	// AClearSharers empties the sharer list.
	AClearSharers
	// ACopyToMem models "copy data to memory"; semantically a no-op
	// for deadlock analysis, kept for table fidelity.
	ACopyToMem
	// ARecordSaved records the requestor of the message being
	// processed into the cache entry's saved-requestor register, so a
	// later transition can respond via ToSaved (deferred forward).
	ARecordSaved
	// AExpectAcks adds |sharers \ {requestor}| to the directory
	// entry's outstanding-ack counter: home-orchestrated protocols
	// (CHI) collect invalidation acks at the directory rather than at
	// the requestor. Must run before AClearSharers.
	AExpectAcks
)

var actionKindNames = [...]string{
	"Send", "SetOwnerToReq", "ClearOwner", "AddReqToSharers",
	"AddOwnerToSharers", "RemoveReqFromSharers", "ClearSharers", "CopyToMem",
	"RecordSaved", "ExpectAcks",
}

func (k ActionKind) String() string {
	if k < 0 || int(k) >= len(actionKindNames) {
		return fmt.Sprintf("ActionKind(%d)", int(k))
	}
	return actionKindNames[k]
}

// Action is one cell entry; actions of a transition execute in order.
type Action struct {
	Kind     ActionKind
	Msg      string // for ASend
	To       Dest   // for ASend
	WithAcks bool   // for ASend: carry |sharers \ {req}| as ack count
	// Inherit copies the ack count of the message being processed
	// into the sent message — how an owner relays the directory's ack
	// count to the requestor (MOSI/MOESI Fwd-GetM → Data).
	Inherit bool
	// ReqSaved stamps the sent message with the requestor recorded by
	// ARecordSaved (clearing the register) — for deferred responses
	// that must carry the recorded transaction's requestor to a fixed
	// destination such as the home (cache only).
	ReqSaved bool
}

func (a Action) String() string {
	if a.Kind == ASend {
		s := fmt.Sprintf("send %s to %s", a.Msg, a.To)
		if a.WithAcks {
			s += " (with ack count)"
		}
		if a.Inherit {
			s += " (inherit acks)"
		}
		return s
	}
	return a.Kind.String()
}

// Transition is one table cell: either a stall, or a list of actions
// plus an optional state change.
type Transition struct {
	Stall   bool
	Actions []Action
	Next    string // next state name; empty means stay
}

// Sends returns the names of messages sent by this transition, in
// action order.
func (t *Transition) Sends() []string {
	var out []string
	for _, a := range t.Actions {
		if a.Kind == ASend {
			out = append(out, a.Msg)
		}
	}
	return out
}

// ControllerKind distinguishes cache, directory, and (for two-level
// composites) L2 home controllers.
type ControllerKind int

const (
	CacheCtrl ControllerKind = iota
	DirCtrl
	// L2Ctrl is the home node of a two-level composite: it acts as a
	// directory toward the inner (L1) caches and as a cache toward the
	// outer directory, so both action vocabularies are legal on it.
	L2Ctrl
)

func (k ControllerKind) String() string {
	switch k {
	case CacheCtrl:
		return "cache"
	case L2Ctrl:
		return "l2"
	default:
		return "directory"
	}
}

// State is a row of a controller table.
type State struct {
	Name      string
	Transient bool
}

// TransKey addresses one cell of a controller table.
type TransKey struct {
	State string
	Event Event
}

// Controller is one tabular FSM (Fig. 1 or Fig. 2 of the paper).
type Controller struct {
	Kind        ControllerKind
	Initial     string
	States      map[string]*State
	Transitions map[TransKey]*Transition
	// stateOrder and eventOrder preserve authoring order for table
	// printing and deterministic iteration.
	stateOrder []string
	eventOrder []Event
}

// StateNames returns state names in authoring (table row) order.
func (c *Controller) StateNames() []string {
	return append([]string(nil), c.stateOrder...)
}

// EventOrder returns events in authoring (table column) order.
func (c *Controller) EventOrder() []Event {
	return append([]Event(nil), c.eventOrder...)
}

// Lookup returns the transition for (state, event), or nil if the cell
// is empty.
func (c *Controller) Lookup(state string, ev Event) *Transition {
	return c.Transitions[TransKey{state, ev}]
}

// Protocol is a complete protocol specification. L2 is nil for flat
// one-level protocols; a non-nil L2 makes the protocol a two-level
// composite (see the xform package) where Cache speaks inner messages
// to the L2 home and the L2 home speaks outer messages to Dir.
type Protocol struct {
	Name     string
	Messages map[string]*Message
	Cache    *Controller
	Dir      *Controller
	L2       *Controller
	msgOrder []string
}

// TwoLevel reports whether the protocol is a two-level composite.
func (p *Protocol) TwoLevel() bool { return p.L2 != nil }

// MessageNames returns message names in declaration order.
func (p *Protocol) MessageNames() []string {
	return append([]string(nil), p.msgOrder...)
}

// MessagesOfType returns the names of messages with the given type, in
// declaration order.
func (p *Protocol) MessagesOfType(t MsgType) []string {
	var out []string
	for _, n := range p.msgOrder {
		if p.Messages[n].Type == t {
			out = append(out, n)
		}
	}
	return out
}

// Controllers returns the cache and directory controllers, plus the
// L2 controller when the protocol is a two-level composite.
func (p *Protocol) Controllers() []*Controller {
	cs := []*Controller{p.Cache, p.Dir}
	if p.L2 != nil {
		cs = append(cs, p.L2)
	}
	return cs
}
