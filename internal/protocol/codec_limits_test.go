package protocol

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// oversizedMessages renders a syntactically valid protocol with n
// message declarations (shared with the fuzz corpus generator).
func oversizedMessages(n int) []byte {
	var b strings.Builder
	b.WriteString(`{"name":"big","messages":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"name":"M%d","type":"request"}`, i)
	}
	b.WriteString(`],"cache":{"initial":"I","stable":["I"],"transitions":[]},` +
		`"directory":{"initial":"I","stable":["I"],"transitions":[]}}`)
	return []byte(b.String())
}

// oversizedTransitions renders a protocol whose cache controller has n
// transitions.
func oversizedTransitions(n int) []byte {
	var b strings.Builder
	b.WriteString(`{"name":"big","messages":[{"name":"Get","type":"request"}],` +
		`"cache":{"initial":"I","stable":["I"],"transitions":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"state":"I","on":"Get","stall":true}`)
	}
	b.WriteString(`]},"directory":{"initial":"I","stable":["I"],"transitions":[]}}`)
	return []byte(b.String())
}

func wantLimit(t *testing.T, data []byte, section string) {
	t.Helper()
	_, err := Decode(data)
	var le *LimitError
	if !errors.As(err, &le) {
		t.Fatalf("Decode error = %v, want *LimitError", err)
	}
	if le.Section != section {
		t.Fatalf("LimitError section = %q, want %q", le.Section, section)
	}
	if le.Count <= le.Max {
		t.Fatalf("LimitError count %d not above max %d", le.Count, le.Max)
	}
}

func TestDecodeRejectsOversizedInput(t *testing.T) {
	// Valid JSON padded past the byte cap: the size check must fire
	// before any parsing happens.
	data := append(oversizedMessages(1), bytes.Repeat([]byte(" "), MaxDecodeBytes)...)
	wantLimit(t, data, "input bytes")
}

func TestDecodeRejectsTooManyMessages(t *testing.T) {
	wantLimit(t, oversizedMessages(MaxMessages+1), "messages")
}

func TestDecodeRejectsTooManyStates(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"name":"big","messages":[],"cache":{"initial":"S0","stable":[`)
	for i := 0; i <= MaxStatesPerController; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `"S%d"`, i)
	}
	b.WriteString(`],"transitions":[]},"directory":{"initial":"I","stable":["I"],"transitions":[]}}`)
	wantLimit(t, []byte(b.String()), "cache states")
}

func TestDecodeRejectsTooManyTransitions(t *testing.T) {
	wantLimit(t, oversizedTransitions(MaxTransitionsPerController+1), "cache transitions")
}

func TestDecodeRejectsTooManyActions(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"name":"big","messages":[{"name":"Get","type":"request"},{"name":"Data","type":"data"}],` +
		`"cache":{"initial":"I","stable":["I"],"transitions":[` +
		`{"state":"I","on":"Get","next":"I","do":[`)
	for i := 0; i <= MaxActionsPerTransition; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`{"action":"send","msg":"Data","to":"req"}`)
	}
	b.WriteString(`]}]},"directory":{"initial":"I","stable":["I"],"transitions":[]}}`)
	wantLimit(t, []byte(b.String()), `cache transition (I,Get) actions`)
}

// TestDecodeLimitsLeaveValidInputAlone pins that a protocol well under
// every cap still round-trips: the caps must not reject real input.
func TestDecodeLimitsLeaveValidInputAlone(t *testing.T) {
	for _, seed := range fuzzSeeds() {
		p, err := Decode(seed)
		if err != nil {
			t.Fatalf("Decode of in-tree seed failed: %v", err)
		}
		if _, err := Encode(p); err != nil {
			t.Fatalf("Encode failed: %v", err)
		}
	}
}

// TestLimitErrorMessage pins the rendered form relied on by API error
// payloads.
func TestLimitErrorMessage(t *testing.T) {
	e := &LimitError{Section: "messages", Count: 300, Max: 256}
	want := "protocol: messages: 300 exceeds the limit of 256"
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}
