package protocol

import (
	"errors"
	"fmt"
)

// Validate checks the structural well-formedness of a protocol:
// declared states and messages, consistent qualifiers, sensible stalls.
// It does not judge deadlock freedom — that is the job of the analysis
// and model-checking packages (a deliberately deadlocking protocol is
// still a valid specification).
func Validate(p *Protocol) error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if p.Name == "" {
		report("protocol has no name")
	}
	if len(p.Messages) == 0 {
		report("protocol declares no messages")
	}

	// levelLegal reports whether a controller kind is attached to a
	// message tier: caches speak inner, the L2 home speaks both, and
	// the directory speaks outer in a two-level composite but inner in
	// a flat protocol (where it is the one and only home).
	twoLevel := p.L2 != nil
	levelLegal := func(k ControllerKind, l MsgLevel) bool {
		switch k {
		case CacheCtrl:
			return l == LevelInner
		case L2Ctrl:
			return true
		default:
			if twoLevel {
				return l == LevelOuter
			}
			return l == LevelInner
		}
	}

	for _, c := range p.Controllers() {
		if c == nil {
			continue
		}
		st, ok := c.States[c.Initial]
		if !ok {
			report("%s initial state %q not declared", c.Kind, c.Initial)
		} else if st.Transient {
			report("%s initial state %q is transient", c.Kind, c.Initial)
		}

		for key, t := range c.Transitions {
			cell := fmt.Sprintf("%s cell (%s, %s)", c.Kind, key.State, key.Event)
			if _, ok := c.States[key.State]; !ok {
				report("%s: state not declared", cell)
				continue
			}
			ev := key.Event
			if ev.IsCore() {
				if c.Kind != CacheCtrl {
					report("%s: only caches receive core events", cell)
				}
				switch ev.Core {
				case Load, Store, Replacement:
				default:
					report("%s: unknown core event %q", cell, ev.Core)
				}
			} else {
				m, ok := p.Messages[ev.Msg]
				if !ok {
					report("%s: message %q not declared", cell, ev.Msg)
				} else if !levelLegal(c.Kind, m.Level) {
					report("%s: %s controller cannot receive %s-level message %q",
						cell, c.Kind, m.Level, ev.Msg)
				} else if ev.Qual != QNone {
					legal := false
					for _, q := range m.Qual.Qualifiers() {
						if q == ev.Qual {
							legal = true
							break
						}
					}
					if !legal {
						report("%s: qualifier %q not produced by message %q (kind %d)",
							cell, ev.Qual, ev.Msg, m.Qual)
					}
				}
			}

			if t.Stall {
				if ev.IsCore() {
					// A "stall" on a core event just means the core
					// retries; it never blocks a queue. Authors write
					// it for table fidelity; it is legal.
					continue
				}
				if st, ok := c.States[key.State]; ok && !st.Transient {
					report("%s: message stall in stable state (no pending transaction to wait for)", cell)
				}
				if len(t.Actions) > 0 || t.Next != "" {
					report("%s: stall cell must not have actions or a next state", cell)
				}
				continue
			}

			if t.Next != "" {
				if _, ok := c.States[t.Next]; !ok {
					report("%s: next state %q not declared", cell, t.Next)
				}
			}
			for _, a := range t.Actions {
				if a.Kind == ASend {
					if m, ok := p.Messages[a.Msg]; !ok {
						report("%s: sends undeclared message %q", cell, a.Msg)
					} else if !levelLegal(c.Kind, m.Level) {
						report("%s: %s controller cannot send %s-level message %q",
							cell, c.Kind, m.Level, a.Msg)
					}
					if a.WithAcks && c.Kind == CacheCtrl {
						report("%s: WithAcks send outside directory", cell)
					}
					if (a.To == ToOwner || a.To == ToSharers) && c.Kind == CacheCtrl {
						report("%s: destination %s only resolvable at directory", cell, a.To)
					}
					if a.To == ToSaved && c.Kind != CacheCtrl {
						report("%s: destination %s only resolvable at cache", cell, a.To)
					}
					if a.ReqSaved && c.Kind != CacheCtrl {
						report("%s: ReqSaved send outside cache", cell)
					}
				} else {
					switch {
					case a.Kind == ACopyToMem:
						// Legal in every controller.
					case a.Kind == ARecordSaved && c.Kind != CacheCtrl:
						report("%s: %s is a cache action", cell, a.Kind)
					case a.Kind != ARecordSaved && c.Kind == CacheCtrl:
						report("%s: bookkeeping action %s outside directory", cell, a.Kind)
					}
				}
			}
		}
	}

	// Every declared message must be sent somewhere and received
	// somewhere, otherwise the spec is suspicious (typo'd name).
	sent := make(map[string]bool)
	received := make(map[string]bool)
	for _, c := range p.Controllers() {
		if c == nil {
			continue
		}
		for key, t := range c.Transitions {
			if !key.Event.IsCore() {
				received[key.Event.Msg] = true
			}
			for _, s := range t.Sends() {
				sent[s] = true
			}
		}
	}
	for _, name := range p.MessageNames() {
		if !sent[name] {
			report("message %q is never sent", name)
		}
		if !received[name] {
			report("message %q is never received", name)
		}
		if p.Messages[name].Level == LevelOuter && !twoLevel {
			report("message %q is outer-level but the protocol has no L2 controller", name)
		}
	}

	return errors.Join(errs...)
}
