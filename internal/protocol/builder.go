package protocol

import (
	"errors"
	"fmt"
)

// Builder assembles a Protocol with a fluent API. Errors encountered
// while authoring are accumulated and reported by Build, so table
// definitions stay readable:
//
//	b := protocol.NewBuilder("MSI")
//	b.Message("GetS", protocol.Request)
//	c := b.Cache("I")
//	c.Stable("I", "S", "M")
//	c.Transient("IS_D")
//	c.On("I", protocol.CoreEv(protocol.Load)).
//	    Send("GetS", protocol.ToDir).Goto("IS_D")
//	c.StallOn("IS_D", protocol.MsgEv("Inv"))
//	p, err := b.Build()
type Builder struct {
	p    *Protocol
	errs []error
}

// NewBuilder returns a builder for a protocol with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		p: &Protocol{
			Name:     name,
			Messages: make(map[string]*Message),
		},
	}
}

// MsgOption customizes a declared message.
type MsgOption func(*Message)

// WithAckRole sets the message's ack-counting role.
func WithAckRole(r AckRole) MsgOption { return func(m *Message) { m.Ack = r } }

// WithQual sets the message's qualifier dimension.
func WithQual(k QualKind) MsgOption { return func(m *Message) { m.Qual = k } }

// WithLevel sets the message's traffic tier (two-level composites).
func WithLevel(l MsgLevel) MsgOption { return func(m *Message) { m.Level = l } }

// Message declares a static message name.
func (b *Builder) Message(name string, t MsgType, opts ...MsgOption) {
	if _, dup := b.p.Messages[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("message %q declared twice", name))
		return
	}
	m := &Message{Name: name, Type: t}
	for _, o := range opts {
		o(m)
	}
	b.p.Messages[name] = m
	b.p.msgOrder = append(b.p.msgOrder, name)
}

// Cache returns the cache-controller builder, creating the controller
// with the given initial state on first call.
func (b *Builder) Cache(initial string) *ControllerBuilder {
	if b.p.Cache == nil {
		b.p.Cache = newController(CacheCtrl, initial)
	}
	return &ControllerBuilder{b: b, c: b.p.Cache}
}

// Dir returns the directory-controller builder, creating the
// controller with the given initial state on first call.
func (b *Builder) Dir(initial string) *ControllerBuilder {
	if b.p.Dir == nil {
		b.p.Dir = newController(DirCtrl, initial)
	}
	return &ControllerBuilder{b: b, c: b.p.Dir}
}

// L2 returns the L2 home-controller builder for a two-level
// composite, creating the controller with the given initial state on
// first call. The L2 controller is optional; flat protocols never
// call this.
func (b *Builder) L2(initial string) *ControllerBuilder {
	if b.p.L2 == nil {
		b.p.L2 = newController(L2Ctrl, initial)
	}
	return &ControllerBuilder{b: b, c: b.p.L2}
}

func newController(kind ControllerKind, initial string) *Controller {
	return &Controller{
		Kind:        kind,
		Initial:     initial,
		States:      make(map[string]*State),
		Transitions: make(map[TransKey]*Transition),
	}
}

// Build validates the accumulated specification and returns the
// protocol, or the combined authoring/validation errors.
func (b *Builder) Build() (*Protocol, error) {
	if b.p.Cache == nil {
		b.errs = append(b.errs, errors.New("no cache controller defined"))
	}
	if b.p.Dir == nil {
		b.errs = append(b.errs, errors.New("no directory controller defined"))
	}
	if len(b.errs) == 0 {
		if err := Validate(b.p); err != nil {
			b.errs = append(b.errs, err)
		}
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	return b.p, nil
}

// MustBuild is Build panicking on error; the built-in protocol
// definitions use it since they are validated by tests.
func (b *Builder) MustBuild() *Protocol {
	p, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("protocol %q: %v", b.p.Name, err))
	}
	return p
}

// ControllerBuilder authors one controller's table.
type ControllerBuilder struct {
	b *Builder
	c *Controller
}

// Stable declares stable states (table rows) in order.
func (cb *ControllerBuilder) Stable(names ...string) *ControllerBuilder {
	for _, n := range names {
		cb.addState(n, false)
	}
	return cb
}

// Transient declares transient states (table rows) in order.
func (cb *ControllerBuilder) Transient(names ...string) *ControllerBuilder {
	for _, n := range names {
		cb.addState(n, true)
	}
	return cb
}

func (cb *ControllerBuilder) addState(name string, transient bool) {
	if _, dup := cb.c.States[name]; dup {
		cb.b.errs = append(cb.b.errs,
			fmt.Errorf("%s state %q declared twice", cb.c.Kind, name))
		return
	}
	cb.c.States[name] = &State{Name: name, Transient: transient}
	cb.c.stateOrder = append(cb.c.stateOrder, name)
}

// Columns declares the table's column order for printing; optional.
func (cb *ControllerBuilder) Columns(evs ...Event) *ControllerBuilder {
	cb.c.eventOrder = append(cb.c.eventOrder, evs...)
	return cb
}

// On starts defining the cell (state, ev); finish with Goto, Stay, or
// further chained actions.
func (cb *ControllerBuilder) On(state string, ev Event) *CellBuilder {
	t := &Transition{}
	cb.setCell(state, ev, t)
	return &CellBuilder{cb: cb, t: t}
}

// StallOn marks the cell (state, ev) as a stall: the message blocks
// the head of its virtual network's input queue (paper §II-E).
func (cb *ControllerBuilder) StallOn(state string, evs ...Event) *ControllerBuilder {
	for _, ev := range evs {
		cb.setCell(state, ev, &Transition{Stall: true})
	}
	return cb
}

// Hit defines a silent local transition (e.g. a load hit): no actions,
// no state change.
func (cb *ControllerBuilder) Hit(state string, ev Event) *ControllerBuilder {
	cb.setCell(state, ev, &Transition{})
	return cb
}

func (cb *ControllerBuilder) setCell(state string, ev Event, t *Transition) {
	key := TransKey{state, ev}
	if _, dup := cb.c.Transitions[key]; dup {
		cb.b.errs = append(cb.b.errs,
			fmt.Errorf("%s cell (%s, %s) defined twice", cb.c.Kind, state, ev))
		return
	}
	cb.c.Transitions[key] = t
	// Track column order on first sight if Columns was not used.
	seen := false
	for _, e := range cb.c.eventOrder {
		if e == ev {
			seen = true
			break
		}
	}
	if !seen {
		cb.c.eventOrder = append(cb.c.eventOrder, ev)
	}
}

// CellBuilder accumulates actions for one cell.
type CellBuilder struct {
	cb *ControllerBuilder
	t  *Transition
}

// Send appends a send action.
func (x *CellBuilder) Send(msg string, to Dest) *CellBuilder {
	x.t.Actions = append(x.t.Actions, Action{Kind: ASend, Msg: msg, To: to})
	return x
}

// SendWithAcks appends a send action whose message carries an ack
// count of |sharers \ {requestor}| (directory only).
func (x *CellBuilder) SendWithAcks(msg string, to Dest) *CellBuilder {
	x.t.Actions = append(x.t.Actions, Action{Kind: ASend, Msg: msg, To: to, WithAcks: true})
	return x
}

// SendInherit appends a send action whose message copies the ack count
// of the message being processed.
func (x *CellBuilder) SendInherit(msg string, to Dest) *CellBuilder {
	x.t.Actions = append(x.t.Actions, Action{Kind: ASend, Msg: msg, To: to, Inherit: true})
	return x
}

// SendReqSaved appends a send action whose message carries the
// requestor recorded by ARecordSaved (clearing the register).
func (x *CellBuilder) SendReqSaved(msg string, to Dest) *CellBuilder {
	x.t.Actions = append(x.t.Actions, Action{Kind: ASend, Msg: msg, To: to, ReqSaved: true})
	return x
}

// Do appends a bookkeeping action.
func (x *CellBuilder) Do(kind ActionKind) *CellBuilder {
	x.t.Actions = append(x.t.Actions, Action{Kind: kind})
	return x
}

// Goto sets the next state, ending the cell.
func (x *CellBuilder) Goto(state string) {
	x.t.Next = state
}

// Stay ends the cell without a state change.
func (x *CellBuilder) Stay() {}
