package protocol

import (
	"encoding/json"
	"fmt"
)

// The JSON codec lets users define protocols in files and feed them to
// cmd/vnmin / cmd/vnverify without writing Go. The schema mirrors the
// builder API; Decode re-runs the same validation as Build.
//
// Decode also accepts untrusted network input (the vnserved API), so
// it enforces hard resource caps before doing any real work: a total
// byte-size cap checked before json.Unmarshal (bounding allocation),
// then per-section count caps checked before the builder runs. Cap
// violations surface as *LimitError so servers can map them to 4xx
// responses instead of treating them like malformed JSON.

// Decode resource caps. Every real coherence protocol is orders of
// magnitude below these; inputs above them are junk or abuse.
const (
	// MaxDecodeBytes caps the encoded protocol size Decode accepts.
	MaxDecodeBytes = 1 << 20
	// MaxMessages caps the message declarations per protocol.
	MaxMessages = 256
	// MaxStatesPerController caps stable+transient states per
	// controller.
	MaxStatesPerController = 512
	// MaxTransitionsPerController caps transitions per controller.
	MaxTransitionsPerController = 8192
	// MaxActionsPerTransition caps the actions of one transition.
	MaxActionsPerTransition = 64
)

// LimitError reports an input that exceeds one of Decode's resource
// caps. Section names the capped quantity ("input bytes", "messages",
// "cache states", "directory transitions", ...).
type LimitError struct {
	Section string
	Count   int
	Max     int
}

func (e *LimitError) Error() string {
	return fmt.Sprintf("protocol: %s: %d exceeds the limit of %d", e.Section, e.Count, e.Max)
}

type jsonProtocol struct {
	Name     string          `json:"name"`
	Messages []jsonMessage   `json:"messages"`
	Cache    *jsonController `json:"cache"`
	Dir      *jsonController `json:"directory"`
	L2       *jsonController `json:"l2,omitempty"`
}

type jsonMessage struct {
	Name  string `json:"name"`
	Type  string `json:"type"`            // request | fwd | data | ctrl
	Ack   string `json:"ack,omitempty"`   // carrier | unit
	Qual  string `json:"qual,omitempty"`  // datasource | ackunit | ownership | lastsharer
	Level string `json:"level,omitempty"` // outer (inner is the default)
}

type jsonController struct {
	Initial     string           `json:"initial"`
	Stable      []string         `json:"stable"`
	Transient   []string         `json:"transient,omitempty"`
	Transitions []jsonTransition `json:"transitions"`
}

type jsonTransition struct {
	State string       `json:"state"`
	On    string       `json:"on"`             // core event or message name
	Qual  string       `json:"qual,omitempty"` // qualifier name
	Stall bool         `json:"stall,omitempty"`
	Next  string       `json:"next,omitempty"`
	Do    []jsonAction `json:"do,omitempty"`
}

type jsonAction struct {
	Action   string `json:"action"`        // send | setOwnerToReq | ...
	Msg      string `json:"msg,omitempty"` // for send
	To       string `json:"to,omitempty"`  // dir | req | owner | sharers
	WithAcks bool   `json:"withAcks,omitempty"`
	Inherit  bool   `json:"inheritAcks,omitempty"`
	ReqSaved bool   `json:"reqSaved,omitempty"`
}

var msgTypeByName = map[string]MsgType{
	"request": Request, "fwd": FwdRequest, "data": DataResponse, "ctrl": CtrlResponse,
}

var msgTypeJSONName = map[MsgType]string{
	Request: "request", FwdRequest: "fwd", DataResponse: "data", CtrlResponse: "ctrl",
}

var qualByName = map[string]Qualifier{
	"": QNone, "ack=0": QAckZero, "ack>0": QAckPositive,
	"from-owner": QFromOwner, "from-nonowner": QFromNonOwner,
	"last-ack": QLastAck, "ack": QNotLastAck,
	"last-sharer": QLastSharer, "non-last-sharer": QNotLastSharer,
}

var qualKindByName = map[string]QualKind{
	"": QualNone, "datasource": QualDataSource, "ackunit": QualAckUnit,
	"ownership": QualOwnership, "lastsharer": QualLastSharer,
}

var qualKindJSONName = map[QualKind]string{
	QualNone: "", QualDataSource: "datasource", QualAckUnit: "ackunit",
	QualOwnership: "ownership", QualLastSharer: "lastsharer",
}

var destByName = map[string]Dest{
	"dir": ToDir, "req": ToReq, "owner": ToOwner, "sharers": ToSharers, "saved": ToSaved,
	"self": ToSelf,
}

var destJSONName = map[Dest]string{
	ToDir: "dir", ToReq: "req", ToOwner: "owner", ToSharers: "sharers", ToSaved: "saved",
	ToSelf: "self",
}

var actionByName = map[string]ActionKind{
	"send": ASend, "setOwnerToReq": ASetOwnerToReq, "clearOwner": AClearOwner,
	"addReqToSharers": AAddReqToSharers, "addOwnerToSharers": AAddOwnerToSharers,
	"removeReqFromSharers": ARemoveReqFromSharers, "clearSharers": AClearSharers,
	"copyToMem": ACopyToMem, "recordSaved": ARecordSaved, "expectAcks": AExpectAcks,
}

var actionJSONName = func() map[ActionKind]string {
	m := make(map[ActionKind]string, len(actionByName))
	for n, k := range actionByName {
		m[k] = n
	}
	return m
}()

// Encode serializes a protocol to indented JSON.
func Encode(p *Protocol) ([]byte, error) {
	jp := jsonProtocol{Name: p.Name}
	for _, name := range p.MessageNames() {
		m := p.Messages[name]
		jm := jsonMessage{Name: name, Type: msgTypeJSONName[m.Type], Qual: qualKindJSONName[m.Qual]}
		if m.Level == LevelOuter {
			jm.Level = "outer"
		}
		switch m.Ack {
		case AckCarrier:
			jm.Ack = "carrier"
		case AckUnit:
			jm.Ack = "unit"
		}
		jp.Messages = append(jp.Messages, jm)
	}
	var encodeCtrl func(c *Controller) *jsonController
	encodeCtrl = func(c *Controller) *jsonController {
		jc := &jsonController{Initial: c.Initial}
		for _, s := range c.StateNames() {
			if c.States[s].Transient {
				jc.Transient = append(jc.Transient, s)
			} else {
				jc.Stable = append(jc.Stable, s)
			}
		}
		for _, s := range c.StateNames() {
			for _, ev := range c.EventOrder() {
				t := c.Lookup(s, ev)
				if t == nil {
					continue
				}
				jt := jsonTransition{State: s, Stall: t.Stall, Next: t.Next}
				if ev.IsCore() {
					jt.On = string(ev.Core)
				} else {
					jt.On = ev.Msg
					jt.Qual = ev.Qual.String()
				}
				for _, a := range t.Actions {
					ja := jsonAction{Action: actionJSONName[a.Kind]}
					if a.Kind == ASend {
						ja.Msg = a.Msg
						ja.To = destJSONName[a.To]
						ja.WithAcks = a.WithAcks
						ja.Inherit = a.Inherit
						ja.ReqSaved = a.ReqSaved
					}
					jt.Do = append(jt.Do, ja)
				}
				jc.Transitions = append(jc.Transitions, jt)
			}
		}
		return jc
	}
	jp.Cache = encodeCtrl(p.Cache)
	jp.Dir = encodeCtrl(p.Dir)
	if p.L2 != nil {
		jp.L2 = encodeCtrl(p.L2)
	}
	return json.MarshalIndent(jp, "", "  ")
}

// Decode parses a JSON protocol definition and validates it. Inputs
// exceeding the decode caps above are rejected with a *LimitError.
func Decode(data []byte) (*Protocol, error) {
	if len(data) > MaxDecodeBytes {
		return nil, &LimitError{Section: "input bytes", Count: len(data), Max: MaxDecodeBytes}
	}
	var jp jsonProtocol
	if err := json.Unmarshal(data, &jp); err != nil {
		return nil, fmt.Errorf("protocol: parse: %w", err)
	}
	if len(jp.Messages) > MaxMessages {
		return nil, &LimitError{Section: "messages", Count: len(jp.Messages), Max: MaxMessages}
	}
	for _, side := range []struct {
		name string
		jc   *jsonController
	}{{"cache", jp.Cache}, {"directory", jp.Dir}, {"l2", jp.L2}} {
		if side.jc == nil {
			continue
		}
		if n := len(side.jc.Stable) + len(side.jc.Transient); n > MaxStatesPerController {
			return nil, &LimitError{Section: side.name + " states", Count: n, Max: MaxStatesPerController}
		}
		if n := len(side.jc.Transitions); n > MaxTransitionsPerController {
			return nil, &LimitError{Section: side.name + " transitions", Count: n, Max: MaxTransitionsPerController}
		}
		for _, jt := range side.jc.Transitions {
			if len(jt.Do) > MaxActionsPerTransition {
				return nil, &LimitError{
					Section: fmt.Sprintf("%s transition (%s,%s) actions", side.name, jt.State, jt.On),
					Count:   len(jt.Do), Max: MaxActionsPerTransition,
				}
			}
		}
	}
	b := NewBuilder(jp.Name)
	for _, jm := range jp.Messages {
		t, ok := msgTypeByName[jm.Type]
		if !ok {
			return nil, fmt.Errorf("protocol: message %q: unknown type %q", jm.Name, jm.Type)
		}
		var opts []MsgOption
		switch jm.Ack {
		case "":
		case "carrier":
			opts = append(opts, WithAckRole(AckCarrier))
		case "unit":
			opts = append(opts, WithAckRole(AckUnit))
		default:
			return nil, fmt.Errorf("protocol: message %q: unknown ack role %q", jm.Name, jm.Ack)
		}
		if jm.Qual != "" {
			k, ok := qualKindByName[jm.Qual]
			if !ok {
				return nil, fmt.Errorf("protocol: message %q: unknown qual kind %q", jm.Name, jm.Qual)
			}
			opts = append(opts, WithQual(k))
		}
		switch jm.Level {
		case "", "inner":
		case "outer":
			opts = append(opts, WithLevel(LevelOuter))
		default:
			return nil, fmt.Errorf("protocol: message %q: unknown level %q", jm.Name, jm.Level)
		}
		b.Message(jm.Name, t, opts...)
	}

	decodeCtrl := func(jc *jsonController, cb *ControllerBuilder) error {
		cb.Stable(jc.Stable...)
		cb.Transient(jc.Transient...)
		for _, jt := range jc.Transitions {
			var ev Event
			switch CoreEvent(jt.On) {
			case Load, Store, Replacement:
				ev = CoreEv(CoreEvent(jt.On))
			default:
				q, ok := qualByName[jt.Qual]
				if !ok {
					return fmt.Errorf("protocol: transition (%s,%s): unknown qualifier %q", jt.State, jt.On, jt.Qual)
				}
				ev = MsgQualEv(jt.On, q)
			}
			if jt.Stall {
				cb.StallOn(jt.State, ev)
				continue
			}
			cell := cb.On(jt.State, ev)
			for _, ja := range jt.Do {
				kind, ok := actionByName[ja.Action]
				if !ok {
					return fmt.Errorf("protocol: transition (%s,%s): unknown action %q", jt.State, jt.On, ja.Action)
				}
				if kind == ASend {
					to, ok := destByName[ja.To]
					if !ok {
						return fmt.Errorf("protocol: transition (%s,%s): unknown destination %q", jt.State, jt.On, ja.To)
					}
					switch {
					case ja.WithAcks:
						cell.SendWithAcks(ja.Msg, to)
					case ja.Inherit:
						cell.SendInherit(ja.Msg, to)
					case ja.ReqSaved:
						cell.SendReqSaved(ja.Msg, to)
					default:
						cell.Send(ja.Msg, to)
					}
				} else {
					cell.Do(kind)
				}
			}
			cell.Goto(jt.Next)
		}
		return nil
	}

	if jp.Cache == nil || jp.Dir == nil {
		return nil, fmt.Errorf("protocol: both cache and directory controllers are required")
	}
	if err := decodeCtrl(jp.Cache, b.Cache(jp.Cache.Initial)); err != nil {
		return nil, err
	}
	if err := decodeCtrl(jp.Dir, b.Dir(jp.Dir.Initial)); err != nil {
		return nil, err
	}
	if jp.L2 != nil {
		if err := decodeCtrl(jp.L2, b.L2(jp.L2.Initial)); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
