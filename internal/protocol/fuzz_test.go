package protocol

import (
	"bytes"
	"testing"
)

// FuzzProtocolRoundTrip asserts parse → print → parse stability of the
// JSON codec: any input Decode accepts must Encode to a form Decode
// accepts again, and that second decode must encode byte-identically
// (the printed form is a fixpoint). The seed corpus under
// testdata/fuzz holds one protocol per structural feature (stalls,
// qualifiers, ack roles, deferred sends).
func FuzzProtocolRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // invalid inputs are fine; only valid ones must round trip
		}
		printed, err := Encode(p)
		if err != nil {
			t.Fatalf("Encode of decoded protocol failed: %v", err)
		}
		q, err := Decode(printed)
		if err != nil {
			t.Fatalf("Decode of printed protocol failed: %v\n%s", err, printed)
		}
		printed2, err := Encode(q)
		if err != nil {
			t.Fatalf("second Encode failed: %v", err)
		}
		if !bytes.Equal(printed, printed2) {
			t.Fatalf("print is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
		}
	})
}

// fuzzSeeds renders in-tree protocols covering the codec's feature
// surface; the checked-in corpus files under
// testdata/fuzz/FuzzProtocolRoundTrip add raw byte seeds on top.
func fuzzSeeds() [][]byte {
	var out [][]byte
	add := func(b *Builder) {
		p, err := b.Build()
		if err != nil {
			panic(err)
		}
		data, err := Encode(p)
		if err != nil {
			panic(err)
		}
		out = append(out, data)
	}

	// Minimal request/response protocol with a stall.
	b := NewBuilder("fuzz_min")
	b.Message("Get", Request)
	b.Message("Data", DataResponse)
	c := b.Cache("I")
	c.Stable("I")
	c.Transient("IS")
	c.On("I", CoreEv(Load)).Send("Get", ToDir).Goto("IS")
	c.On("IS", MsgEv("Data")).Goto("I")
	d := b.Dir("H")
	d.Stable("H")
	d.Transient("B")
	d.On("H", MsgEv("Get")).Send("Data", ToReq).Goto("B")
	d.StallOn("B", MsgEv("Get"))
	d.On("B", MsgEv("Data")).Goto("H") // unreachable, but received
	add(b)

	// Qualified receptions, ack roles, and bookkeeping actions.
	b = NewBuilder("fuzz_quals")
	b.Message("GetM", Request)
	b.Message("Data", DataResponse, WithAckRole(AckCarrier), WithQual(QualDataSource))
	b.Message("InvAck", CtrlResponse, WithAckRole(AckUnit), WithQual(QualAckUnit))
	b.Message("Inv", FwdRequest)
	c = b.Cache("I")
	c.Stable("I", "S", "M")
	c.Transient("IM")
	c.On("I", CoreEv(Store)).Send("GetM", ToDir).Goto("IM")
	c.On("IM", MsgQualEv("Data", QAckZero)).Goto("M")
	c.On("IM", MsgQualEv("Data", QAckPositive)).Goto("IM")
	c.On("IM", MsgQualEv("InvAck", QLastAck)).Goto("M")
	c.On("IM", MsgQualEv("InvAck", QNotLastAck)).Goto("IM")
	c.On("S", MsgEv("Inv")).Send("InvAck", ToReq).Goto("I")
	d = b.Dir("H")
	d.Stable("H", "MM")
	d.On("H", MsgEv("GetM")).Do(ASetOwnerToReq).Send("Data", ToReq).
		Send("Inv", ToSharers).Do(AClearSharers).Goto("MM")
	d.On("MM", MsgEv("GetM")).Send("Data", ToReq).Do(ASetOwnerToReq).Goto("MM")
	add(b)

	return out
}
