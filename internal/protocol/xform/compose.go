package xform

import (
	"fmt"
	"sort"
	"strings"

	"minvn/internal/protocol"
)

// Message-name prefixes of the two tiers of a composite.
const (
	InnerPrefix = "i."
	OuterPrefix = "o."
)

// ProductSep joins the two components of an L2 product state name:
// "<inner-dir-state>|<outer-cache-state>".
const ProductSep = "|"

// Compose stacks the inner protocol's L1 caches under an L2 home node
// that is itself a cache of the outer protocol. The composite's cache
// controller is inner's cache and its directory controller is outer's
// directory, with messages renamed onto disjoint tiers (InnerPrefix /
// OuterPrefix). The L2 controller is the product of inner's directory
// and outer's cache: in state "d1|c2" it serves inner requests using
// d1's row whenever the outer cache state c2 holds the permission the
// transition hands out, and otherwise launches c2's Load/Store request
// toward the outer directory and re-enqueues the inner request to
// itself until the outer response arrives.
//
// Permission accounting is mechanical: an inner-directory transition
// needs write permission when it records a new owner (ASetOwnerToReq),
// read permission when it supplies a data response, and none
// otherwise; an outer cache state holds a permission when the
// corresponding core event (Store/Load) is a silent transition (no
// sends — a hit, or a silent upgrade such as MESI's E→M).
//
// The L2 is inclusive and non-revoking: outer forwarded requests are
// stalled while the inner directory component is away from its initial
// state (inner caches hold copies the L2 cannot recall), which is the
// composite's source of cross-level waits edges; the inner level's
// eviction transitions are what release them. Product states whose
// inner component is non-initial are therefore transient.
//
// A final prune removes product states unreachable in the static
// transition graph and message tiers that no remaining transition
// sends — the outer eviction vocabulary, for example, since the L2
// never issues Replacement.
//
// Both bases must be flat. The outer base's cache must not use the
// saved-requestor register (ARecordSaved/ToSaved are cache-only
// actions, unavailable on an L2 home): compose with blocking outer
// variants.
func Compose(inner, outer *protocol.Protocol, name string) (*protocol.Protocol, error) {
	if inner.TwoLevel() || outer.TwoLevel() {
		return nil, fmt.Errorf("xform: compose requires flat bases (%s, %s)", inner.Name, outer.Name)
	}
	for key, t := range outer.Cache.Transitions {
		for _, a := range t.Actions {
			if a.Kind == protocol.ARecordSaved || a.ReqSaved || (a.Kind == protocol.ASend && a.To == protocol.ToSaved) {
				return nil, fmt.Errorf(
					"xform: outer base %s uses the saved-requestor register (cell %s/%s); compose with a blocking outer variant",
					outer.Name, key.State, key.Event)
			}
		}
		if ev := key.Event; !ev.IsCore() {
			if q := outer.Messages[ev.Msg].Qual; q == protocol.QualOwnership || q == protocol.QualLastSharer {
				return nil, fmt.Errorf(
					"xform: outer base %s cache receives directory-book-qualified message %q, unresolvable at an L2 home",
					outer.Name, ev.Msg)
			}
		}
	}

	caches := specFromController(inner.Cache, InnerPrefix)
	dir := specFromController(outer.Dir, OuterPrefix)
	l2, err := productSpec(inner, outer)
	if err != nil {
		return nil, err
	}

	msgs := composeMessages(inner, outer)
	specs := []*ctrlSpec{caches, l2, dir}
	prune(specs, msgs)

	b := protocol.NewBuilder(name)
	for _, m := range msgs {
		if !m.dead {
			b.Message(m.name, m.spec.Type, append(msgOpts(m.spec), protocol.WithLevel(m.level))...)
		}
	}
	for _, sp := range specs {
		cb, err := controllerBuilderKind(b, sp.kind, sp.initial)
		if err != nil {
			return nil, err
		}
		for _, st := range sp.stateOrder {
			if sp.dead[st] {
				continue
			}
			if sp.transient[st] {
				cb.Transient(st)
			} else {
				cb.Stable(st)
			}
		}
		for _, key := range sp.order {
			t := sp.cells[key]
			if t == nil {
				continue
			}
			copyCell(cb, key.State, key.Event, t)
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("xform: compose %s under %s: %w", inner.Name, outer.Name, err)
	}
	return p, nil
}

// ctrlSpec is the mutable intermediate form of one controller table,
// pruned before it is re-authored through the builder.
type ctrlSpec struct {
	kind       protocol.ControllerKind
	initial    string
	stateOrder []string
	transient  map[string]bool
	dead       map[string]bool
	cells      map[protocol.TransKey]*protocol.Transition
	order      []protocol.TransKey
}

func (sp *ctrlSpec) add(state string, ev protocol.Event, t *protocol.Transition) {
	key := protocol.TransKey{State: state, Event: ev}
	if _, dup := sp.cells[key]; dup {
		return
	}
	sp.cells[key] = t
	sp.order = append(sp.order, key)
}

// specFromController copies a flat controller verbatim with its
// messages moved onto a prefix tier.
func specFromController(c *protocol.Controller, prefix string) *ctrlSpec {
	sp := &ctrlSpec{
		kind:      c.Kind,
		initial:   c.Initial,
		transient: map[string]bool{},
		dead:      map[string]bool{},
		cells:     map[protocol.TransKey]*protocol.Transition{},
	}
	for _, name := range c.StateNames() {
		sp.stateOrder = append(sp.stateOrder, name)
		sp.transient[name] = c.States[name].Transient
	}
	for _, st := range c.StateNames() {
		for _, ev := range c.EventOrder() {
			t := c.Lookup(st, ev)
			if t == nil {
				continue
			}
			sp.add(st, renameEvent(prefix, ev), mapCell(t, prefix, func(n string) string { return n }))
		}
	}
	return sp
}

// renameEvent moves a message event onto a prefix tier; core events
// pass through.
func renameEvent(prefix string, ev protocol.Event) protocol.Event {
	if ev.IsCore() {
		return ev
	}
	return protocol.Event{Msg: prefix + ev.Msg, Qual: ev.Qual}
}

// mapCell rewrites a transition with prefixed send names and a mapped
// next state. Stall cells map to stall cells; next("") must be "".
func mapCell(t *protocol.Transition, prefix string, next func(string) string) *protocol.Transition {
	if t.Stall {
		return &protocol.Transition{Stall: true}
	}
	nt := &protocol.Transition{Next: next(t.Next)}
	for _, a := range t.Actions {
		if a.Kind == protocol.ASend {
			a.Msg = prefix + a.Msg
		}
		nt.Actions = append(nt.Actions, a)
	}
	return nt
}

// permission levels an inner-directory transition may require of the
// outer cache state.
type permNeed int

const (
	permNone permNeed = iota
	permRead
	permWrite
)

// needOf computes the outer permission an inner-directory transition
// requires: write when it records a new owner, read when it supplies
// data, none otherwise (forwards, nacks, eviction bookkeeping).
func needOf(inner *protocol.Protocol, t *protocol.Transition) permNeed {
	for _, a := range t.Actions {
		if a.Kind == protocol.ASetOwnerToReq {
			return permWrite
		}
	}
	for _, a := range t.Actions {
		if a.Kind == protocol.ASend && inner.Messages[a.Msg].Type == protocol.DataResponse {
			return permRead
		}
	}
	return permNone
}

// coreEventFor maps a permission to the outer-cache core event that
// acquires it.
func coreEventFor(n permNeed) protocol.Event {
	if n == permWrite {
		return protocol.CoreEv(protocol.Store)
	}
	return protocol.CoreEv(protocol.Load)
}

// productSpec builds the L2 home controller: the product of inner's
// directory and outer's cache.
func productSpec(inner, outer *protocol.Protocol) (*ctrlSpec, error) {
	d1Init := inner.Dir.Initial
	join := func(d1, c2 string) string { return d1 + ProductSep + c2 }
	orElse := func(n, cur string) string {
		if n == "" {
			return cur
		}
		return n
	}

	sp := &ctrlSpec{
		kind:      protocol.L2Ctrl,
		initial:   join(d1Init, outer.Cache.Initial),
		transient: map[string]bool{},
		dead:      map[string]bool{},
		cells:     map[protocol.TransKey]*protocol.Transition{},
	}
	for _, d1 := range inner.Dir.StateNames() {
		for _, c2 := range outer.Cache.StateNames() {
			ps := join(d1, c2)
			sp.stateOrder = append(sp.stateOrder, ps)
			sp.transient[ps] = inner.Dir.States[d1].Transient ||
				outer.Cache.States[c2].Transient || d1 != d1Init
		}
	}

	stall := func() *protocol.Transition { return &protocol.Transition{Stall: true} }
	for _, d1 := range inner.Dir.StateNames() {
		for _, c2 := range outer.Cache.StateNames() {
			ps := join(d1, c2)
			c2Transient := outer.Cache.States[c2].Transient

			// Inner tier: d1's row, gated by c2's permissions.
			for _, ev := range inner.Dir.EventOrder() {
				t := inner.Dir.Lookup(d1, ev)
				if t == nil {
					continue
				}
				iev := renameEvent(InnerPrefix, ev)
				if t.Stall {
					sp.add(ps, iev, stall())
					continue
				}
				need := needOf(inner, t)
				innerNext := func(c2After string) string {
					return join(orElse(t.Next, d1), c2After)
				}
				if need == permNone {
					sp.add(ps, iev, mapCell(t, InnerPrefix,
						func(n string) string { return join(orElse(n, d1), c2) }))
					continue
				}
				if c2Transient {
					// The outer transaction that will supply the
					// permission is in flight; wait for its response.
					sp.add(ps, iev, stall())
					continue
				}
				core := coreEventFor(need)
				u := outer.Cache.Lookup(c2, core)
				if u == nil || u.Stall {
					return nil, fmt.Errorf(
						"xform: outer base %s has no usable (%s, %s) transition for an L2 launch",
						outer.Name, c2, core)
				}
				if len(u.Sends()) == 0 {
					// Silent core transition: c2 already holds the
					// permission (possibly upgrading, e.g. E→M).
					nt := mapCell(t, InnerPrefix, func(string) string { return "" })
					nt.Next = innerNext(orElse(u.Next, c2))
					sp.add(ps, iev, nt)
					continue
				}
				if u.Next == "" {
					return nil, fmt.Errorf(
						"xform: outer base %s (%s, %s) sends without a next state", outer.Name, c2, core)
				}
				// Launch the outer request, requeue the inner one.
				launch := mapCell(u, OuterPrefix, func(string) string { return join(d1, u.Next) })
				launch.Actions = append(launch.Actions, protocol.Action{
					Kind: protocol.ASend, Msg: InnerPrefix + ev.Msg,
					To: protocol.ToSelf, Inherit: true,
				})
				sp.add(ps, iev, launch)
			}

			// Outer tier: c2's row. Forwarded requests are stalled
			// while the inner level holds copies (d1 non-initial) —
			// the L2 cannot recall inner caches, so revocation waits
			// for inner evictions.
			for _, ev := range outer.Cache.EventOrder() {
				if ev.IsCore() {
					continue
				}
				u := outer.Cache.Lookup(c2, ev)
				if u == nil {
					continue
				}
				oev := renameEvent(OuterPrefix, ev)
				if outer.Messages[ev.Msg].Type == protocol.FwdRequest && d1 != d1Init {
					sp.add(ps, oev, stall())
					continue
				}
				sp.add(ps, oev, mapCell(u, OuterPrefix,
					func(n string) string { return join(d1, orElse(n, c2)) }))
			}
		}
	}
	return sp, nil
}

// composedMsg tracks one declared message of the composite through the
// prune.
type composedMsg struct {
	name  string
	spec  *protocol.Message
	level protocol.MsgLevel
	dead  bool
}

func composeMessages(inner, outer *protocol.Protocol) []*composedMsg {
	var out []*composedMsg
	for _, n := range inner.MessageNames() {
		out = append(out, &composedMsg{
			name: InnerPrefix + n, spec: inner.Messages[n], level: protocol.LevelInner,
		})
	}
	for _, n := range outer.MessageNames() {
		out = append(out, &composedMsg{
			name: OuterPrefix + n, spec: outer.Messages[n], level: protocol.LevelOuter,
		})
	}
	return out
}

// prune removes, to a greatest fixpoint, messages no fireable cell
// sends, cells triggered by such messages, and states unreachable from
// each controller's initial state through the remaining cells. A cell
// is fireable when its state is reachable and its trigger is a core
// event or a still-live message. Static reachability over-approximates
// dynamic reachability, so every dynamically possible reception keeps
// its cell.
func prune(specs []*ctrlSpec, msgs []*composedMsg) {
	live := map[string]bool{}
	for _, m := range msgs {
		live[m.name] = true
	}
	for {
		changed := false

		// Messages sent by fireable cells.
		sent := map[string]bool{}
		for _, sp := range specs {
			for key, t := range sp.cells {
				if t == nil || sp.dead[key.State] {
					continue
				}
				if !key.Event.IsCore() && !live[key.Event.Msg] {
					continue
				}
				for _, s := range t.Sends() {
					sent[s] = true
				}
			}
		}
		for name := range live {
			if !sent[name] {
				delete(live, name)
				changed = true
			}
		}

		// States reachable through fireable cells.
		for _, sp := range specs {
			reach := map[string]bool{sp.initial: true}
			for {
				grew := false
				for key, t := range sp.cells {
					if t == nil || t.Next == "" || !reach[key.State] || reach[t.Next] {
						continue
					}
					if !key.Event.IsCore() && !live[key.Event.Msg] {
						continue
					}
					reach[t.Next] = true
					grew = true
				}
				if !grew {
					break
				}
			}
			for _, st := range sp.stateOrder {
				if !reach[st] && !sp.dead[st] {
					sp.dead[st] = true
					changed = true
				}
			}
		}

		if !changed {
			break
		}
	}

	for _, sp := range specs {
		for key := range sp.cells {
			if sp.dead[key.State] || (!key.Event.IsCore() && !live[key.Event.Msg]) {
				sp.cells[key] = nil
			}
		}
	}
	for _, m := range msgs {
		m.dead = !live[m.name]
	}
}

// controllerBuilderKind returns the builder for a controller of the
// given kind, creating it with the initial state.
func controllerBuilderKind(b *protocol.Builder, k protocol.ControllerKind, initial string) (*protocol.ControllerBuilder, error) {
	switch k {
	case protocol.CacheCtrl:
		return b.Cache(initial), nil
	case protocol.DirCtrl:
		return b.Dir(initial), nil
	case protocol.L2Ctrl:
		return b.L2(initial), nil
	default:
		return nil, fmt.Errorf("xform: unknown controller kind %v", k)
	}
}

// ComposeName is the conventional name of a composite: "<inner>_under_<outer>"
// over the bases' short names.
func ComposeName(innerName, outerName string) string {
	short := func(n string) string {
		if i := strings.Index(n, "_"); i > 0 {
			return n[:i]
		}
		return n
	}
	return short(innerName) + "_under_" + short(outerName)
}

// sortKeys is a test helper exposing deterministic cell ordering.
func sortKeys(keys []protocol.TransKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.State != b.State {
			return a.State < b.State
		}
		return a.Event.String() < b.Event.String()
	})
}
