// Package xform mechanically derives new protocols from existing
// ones: NonStalling replaces every stall-on-receive transition with an
// explicit replay message exchange, and Compose stacks an L1 protocol
// under an L2 home node to form a two-level composite. Both transforms
// produce ordinary protocol.Protocol values that the static analysis,
// the VN-assignment algorithm, and the machine/mc stack accept
// unchanged — they are how the repository grows the paper's Table I
// family beyond the hand-written built-ins.
package xform

import (
	"fmt"
	"sort"

	"minvn/internal/protocol"
)

// ReplayPrefix names the synthesized replay message of a stalled
// message: Replay-<m> is the nack/replay form of m.
const ReplayPrefix = "Replay-"

// NonStallingSuffix is appended to the protocol name by NonStalling.
const NonStallingSuffix = "_nonstalling"

// NonStalling derives the non-stalling variant of p: every transition
// that stalls a message reception is split into an explicit replay —
// the controller consumes the message and re-enqueues it to itself as
// Replay-<m>, so the head of the virtual network's input queue never
// blocks. Reception of Replay-<m> mirrors reception of m in every
// state, which preserves the causes structure the analysis consumes;
// the stalls relation of the result is empty, so its waits relation is
// empty and one virtual network provably suffices (Eq. 4 holds
// trivially). The transform trades queue separation for replay
// traffic: deadlock freedom no longer needs VNs, at the cost of
// recirculating messages the controller cannot yet process.
//
// Core-event stalls are kept: a "stalled" processor event just means
// the core retries and never blocks a queue (paper §II-E), so it
// contributes nothing to the stalls relation.
//
// The transform refuses protocols that stall a message with reception
// ack arithmetic (QualDataSource, QualAckUnit, or an AckUnit role):
// consuming such a message updates the receiver's ack counter, so a
// replayed copy would be double-counted. No built-in stalls one —
// those messages are what transient states wait *for*.
func NonStalling(p *protocol.Protocol) (*protocol.Protocol, error) {
	// Which messages does some controller stall?
	stalled := map[string]bool{}
	for _, c := range p.Controllers() {
		for key, t := range c.Transitions {
			if t.Stall && !key.Event.IsCore() {
				stalled[key.Event.Msg] = true
			}
		}
	}
	for m := range stalled {
		spec := p.Messages[m]
		if spec == nil {
			return nil, fmt.Errorf("xform: stalled message %q not declared", m)
		}
		if spec.Qual == protocol.QualDataSource || spec.Qual == protocol.QualAckUnit ||
			spec.Ack == protocol.AckUnit {
			return nil, fmt.Errorf(
				"xform: cannot split stall on %q: reception performs ack arithmetic, a replay would double-count", m)
		}
		if _, clash := p.Messages[ReplayPrefix+m]; clash {
			return nil, fmt.Errorf("xform: replay name %q already declared", ReplayPrefix+m)
		}
	}
	stalledNames := make([]string, 0, len(stalled))
	for m := range stalled {
		stalledNames = append(stalledNames, m)
	}
	sort.Strings(stalledNames)

	b := protocol.NewBuilder(p.Name + NonStallingSuffix)
	for _, name := range p.MessageNames() {
		m := p.Messages[name]
		b.Message(name, m.Type, msgOpts(m)...)
	}
	for _, name := range stalledNames {
		m := p.Messages[name]
		b.Message(ReplayPrefix+name, m.Type, msgOpts(m)...)
	}

	for _, c := range p.Controllers() {
		cb, err := controllerBuilder(b, c)
		if err != nil {
			return nil, err
		}
		declareStates(cb, c)
		// First pass: copy every cell, converting message stalls into
		// replay requeues. SendInherit keeps a carried ack count on the
		// replay; the machine's ToSelf send keeps the original Src and
		// Req, so the replay is the same message under a new name.
		for _, st := range c.StateNames() {
			for _, ev := range c.EventOrder() {
				t := c.Lookup(st, ev)
				if t == nil {
					continue
				}
				if t.Stall && !ev.IsCore() {
					cb.On(st, ev).
						SendInherit(ReplayPrefix+ev.Msg, protocol.ToSelf).Stay()
					continue
				}
				copyCell(cb, st, ev, t)
			}
		}
		// Second pass: mirror every cell of a stalled message under its
		// replay name, so Replay-<m> is received exactly like m in
		// every state — including the converted stall cells, whose
		// mirror re-requeues the replay until the state changes.
		for _, st := range c.StateNames() {
			for _, ev := range c.EventOrder() {
				if ev.IsCore() || !stalled[ev.Msg] {
					continue
				}
				t := c.Lookup(st, ev)
				if t == nil {
					continue
				}
				mirror := protocol.Event{Msg: ReplayPrefix + ev.Msg, Qual: ev.Qual}
				if t.Stall {
					cb.On(st, mirror).
						SendInherit(ReplayPrefix+ev.Msg, protocol.ToSelf).Stay()
					continue
				}
				copyCell(cb, st, mirror, t)
			}
		}
	}

	out, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("xform: non-stalling %s: %w", p.Name, err)
	}
	return out, nil
}

// msgOpts reconstructs the declaration options of a message.
func msgOpts(m *protocol.Message) []protocol.MsgOption {
	var opts []protocol.MsgOption
	if m.Ack != protocol.AckNone {
		opts = append(opts, protocol.WithAckRole(m.Ack))
	}
	if m.Qual != protocol.QualNone {
		opts = append(opts, protocol.WithQual(m.Qual))
	}
	if m.Level != protocol.LevelInner {
		opts = append(opts, protocol.WithLevel(m.Level))
	}
	return opts
}

// controllerBuilder returns the builder for the counterpart of c.
func controllerBuilder(b *protocol.Builder, c *protocol.Controller) (*protocol.ControllerBuilder, error) {
	switch c.Kind {
	case protocol.CacheCtrl:
		return b.Cache(c.Initial), nil
	case protocol.DirCtrl:
		return b.Dir(c.Initial), nil
	case protocol.L2Ctrl:
		return b.L2(c.Initial), nil
	default:
		return nil, fmt.Errorf("xform: unknown controller kind %v", c.Kind)
	}
}

// declareStates re-declares c's states in authoring order.
func declareStates(cb *protocol.ControllerBuilder, c *protocol.Controller) {
	for _, name := range c.StateNames() {
		if c.States[name].Transient {
			cb.Transient(name)
		} else {
			cb.Stable(name)
		}
	}
}

// copyCell re-authors one non-stall (or core-stall) transition cell.
func copyCell(cb *protocol.ControllerBuilder, st string, ev protocol.Event, t *protocol.Transition) {
	if t.Stall {
		cb.StallOn(st, ev)
		return
	}
	cell := cb.On(st, ev)
	for _, a := range t.Actions {
		if a.Kind == protocol.ASend {
			switch {
			case a.WithAcks:
				cell.SendWithAcks(a.Msg, a.To)
			case a.Inherit:
				cell.SendInherit(a.Msg, a.To)
			case a.ReqSaved:
				cell.SendReqSaved(a.Msg, a.To)
			default:
				cell.Send(a.Msg, a.To)
			}
		} else {
			cell.Do(a.Kind)
		}
	}
	if t.Next != "" {
		cell.Goto(t.Next)
	} else {
		cell.Stay()
	}
}
