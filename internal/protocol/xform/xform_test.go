package xform

import (
	"bytes"
	"strings"
	"testing"

	"minvn/internal/analysis"
	"minvn/internal/machine"
	"minvn/internal/mc"
	"minvn/internal/protocol"
	"minvn/internal/protocols"
	"minvn/internal/vnassign"
)

// TestNonStallingAllBuiltins: every registered protocol transforms,
// validates, loses its stalls relation, and lands at one VN — the
// "add message types" column of the paper's trade-off in mechanical
// form.
func TestNonStallingAllBuiltins(t *testing.T) {
	for _, name := range protocols.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p := protocols.MustLoad(name)
			ns, err := NonStalling(p)
			if err != nil {
				t.Fatal(err)
			}
			if ns.Name != name+NonStallingSuffix {
				t.Errorf("name = %q", ns.Name)
			}
			parentStalls := false
			for _, c := range p.Controllers() {
				for key, tr := range c.Transitions {
					if tr.Stall && !key.Event.IsCore() {
						parentStalls = true
					}
				}
			}
			if parentStalls && len(ns.Messages) <= len(p.Messages) {
				t.Errorf("no replay messages added (%d -> %d)", len(p.Messages), len(ns.Messages))
			}
			if !parentStalls && len(ns.Messages) != len(p.Messages) {
				t.Errorf("identity transform added messages (%d -> %d)", len(p.Messages), len(ns.Messages))
			}
			// No message-stall cells anywhere.
			for _, c := range ns.Controllers() {
				for key, tr := range c.Transitions {
					if tr.Stall && !key.Event.IsCore() {
						t.Errorf("%v/%s/%s still stalls", c.Kind, key.State, key.Event)
					}
				}
			}
			r := analysis.Analyze(ns)
			if got := r.Stalls.Pairs(); len(got) != 0 {
				t.Errorf("stalls relation nonempty: %v", got)
			}
			a := vnassign.Assign(ns)
			if a.Class != vnassign.Class3 || a.NumVNs != 1 {
				t.Errorf("want Class 3 / 1 VN, got %v", a)
			}
			if ok, cyc := analysis.DeadlockFree(r, a.VN); !ok {
				t.Errorf("Eq. 4 fails: %v", cyc)
			}
		})
	}
}

// TestNonStallingDeterministic: the transform is a function — two runs
// encode to identical bytes, so goldens and the fuzz round-trip are
// stable.
func TestNonStallingDeterministic(t *testing.T) {
	p := protocols.MustLoad("MESIF_blocking_cache")
	a, err := NonStalling(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NonStalling(protocols.MustLoad("MESIF_blocking_cache"))
	if err != nil {
		t.Fatal(err)
	}
	ea, err := protocol.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := protocol.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Error("transform not deterministic")
	}
}

// TestNonStallingPreservesNonStallCells: every non-stall cell of the
// parent survives verbatim, and each stalled message's cells are
// mirrored under its replay name.
func TestNonStallingPreservesNonStallCells(t *testing.T) {
	p := protocols.MustLoad("MSI_blocking_cache")
	ns, err := NonStalling(p)
	if err != nil {
		t.Fatal(err)
	}
	for ci, c := range p.Controllers() {
		nc := ns.Controllers()[ci]
		for key, tr := range c.Transitions {
			got := nc.Transitions[key]
			if got == nil {
				t.Fatalf("%v/%s/%s missing in transform", c.Kind, key.State, key.Event)
			}
			if tr.Stall && !key.Event.IsCore() {
				if got.Stall {
					t.Errorf("%v/%s/%s not converted", c.Kind, key.State, key.Event)
				}
				continue
			}
			if got.Stall != tr.Stall || got.Next != tr.Next || len(got.Actions) != len(tr.Actions) {
				t.Errorf("%v/%s/%s altered: %+v vs %+v", c.Kind, key.State, key.Event, got, tr)
			}
			if !key.Event.IsCore() {
				mirror := protocol.TransKey{State: key.State,
					Event: protocol.Event{Msg: ReplayPrefix + key.Event.Msg, Qual: key.Event.Qual}}
				if _, hasReplay := ns.Messages[ReplayPrefix+key.Event.Msg]; hasReplay {
					if nc.Transitions[mirror] == nil {
						t.Errorf("%v/%s: no mirror cell for %s", c.Kind, key.State, mirror.Event)
					}
				}
			}
		}
	}
}

// TestNonStallingMachineComplete: the transformed blocking protocols
// explore completely on a single VN — the dynamic confirmation that
// replays removed the need for queue separation. The stalling parents
// are Class 2: no VN count fixes them.
func TestNonStallingMachineComplete(t *testing.T) {
	for _, name := range []string{"MSI_blocking_cache", "MESI_blocking_cache"} {
		name := name
		t.Run(name, func(t *testing.T) {
			ns, err := NonStalling(protocols.MustLoad(name))
			if err != nil {
				t.Fatal(err)
			}
			vn, n := machine.UniformVN(ns)
			sys, err := machine.New(machine.Config{
				Protocol: ns, Caches: 2, Dirs: 1, Addrs: 1, VN: vn, NumVNs: n})
			if err != nil {
				t.Fatal(err)
			}
			res := mc.Check(sys, mc.Options{MaxStates: 4_000_000, DisableTraces: true})
			if res.Outcome != mc.Complete {
				t.Fatalf("want complete on 1 VN, got %v: %s", res, res.Message)
			}
		})
	}
}

// TestComposeBuilds: the two campaign composites build, validate, and
// carry the expected two-level shape.
func TestComposeBuilds(t *testing.T) {
	for _, tc := range []struct{ inner, outer string }{
		{"MSI_blocking_cache", "MESI_blocking_cache"},
		{"MESI_blocking_cache", "MESI_blocking_cache"},
	} {
		tc := tc
		t.Run(ComposeName(tc.inner, tc.outer), func(t *testing.T) {
			p, err := Compose(protocols.MustLoad(tc.inner), protocols.MustLoad(tc.outer),
				ComposeName(tc.inner, tc.outer))
			if err != nil {
				t.Fatal(err)
			}
			if !p.TwoLevel() || p.L2 == nil {
				t.Fatal("composite is not two-level")
			}
			if err := protocol.Validate(p); err != nil {
				t.Fatal(err)
			}
			// Tiers are disjoint and complete.
			for name, m := range p.Messages {
				switch {
				case strings.HasPrefix(name, InnerPrefix):
					if m.Level != protocol.LevelInner {
						t.Errorf("%s at level %v", name, m.Level)
					}
				case strings.HasPrefix(name, OuterPrefix):
					if m.Level != protocol.LevelOuter {
						t.Errorf("%s at level %v", name, m.Level)
					}
				default:
					t.Errorf("unprefixed message %s", name)
				}
			}
			// The L2 never evicts, so the outer eviction vocabulary is
			// pruned.
			for _, dead := range []string{"o.PutS", "o.PutM"} {
				if _, ok := p.Messages[dead]; ok {
					t.Errorf("%s survived the prune", dead)
				}
			}
			// Cross-level waits exist: the analysis accepts the
			// composite and sees inner requests wait on outer traffic.
			r := analysis.Analyze(p)
			crossLevel := false
			for _, pr := range r.Waits.Pairs() {
				if strings.HasPrefix(pr.From, InnerPrefix) && strings.HasPrefix(pr.To, OuterPrefix) {
					crossLevel = true
					break
				}
			}
			if !crossLevel {
				t.Errorf("no inner-waits-on-outer edge; waits = %v", r.Waits.Pairs())
			}
			if _, err := protocol.Encode(p); err != nil {
				t.Errorf("composite does not encode: %v", err)
			}
		})
	}
}

// TestComposeMachineComplete: the composite runs under the machine
// with an L2 tier and explores completely under per-message VNs at the
// paper's small configuration.
func TestComposeMachineComplete(t *testing.T) {
	for _, tc := range []struct{ inner, outer string }{
		{"MSI_blocking_cache", "MESI_blocking_cache"},
		{"MESI_blocking_cache", "MESI_blocking_cache"},
	} {
		tc := tc
		t.Run(ComposeName(tc.inner, tc.outer), func(t *testing.T) {
			p, err := Compose(protocols.MustLoad(tc.inner), protocols.MustLoad(tc.outer),
				ComposeName(tc.inner, tc.outer))
			if err != nil {
				t.Fatal(err)
			}
			vn, n := machine.PerMessageVN(p)
			sys, err := machine.New(machine.Config{
				Protocol: p, Caches: 2, L2s: 1, Dirs: 1, Addrs: 1, VN: vn, NumVNs: n})
			if err != nil {
				t.Fatal(err)
			}
			res := mc.Check(sys, mc.Options{MaxStates: 4_000_000, DisableTraces: true})
			if res.Outcome != mc.Complete {
				t.Fatalf("want complete, got %v: %s", res, res.Message)
			}
		})
	}
}

// TestComposeRejects: guard rails.
func TestComposeRejects(t *testing.T) {
	msi := protocols.MustLoad("MSI_blocking_cache")
	mesi := protocols.MustLoad("MESI_blocking_cache")
	comp, err := Compose(msi, mesi, "c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose(comp, mesi, "cc"); err == nil {
		t.Error("composed an already two-level inner")
	}
	if _, err := Compose(msi, comp, "cc"); err == nil {
		t.Error("composed an already two-level outer")
	}
	// Non-blocking outer caches park the requestor in the saved
	// register — unavailable at an L2 home.
	if _, err := Compose(msi, protocols.MustLoad("MSI_nonblocking_cache"), "x"); err == nil {
		t.Error("accepted a saved-register outer base")
	}
}
