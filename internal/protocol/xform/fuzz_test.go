package xform

import (
	"testing"

	"minvn/internal/analysis"
	"minvn/internal/protocol"
	"minvn/internal/protocols"
)

// FuzzTransformRoundTrip feeds arbitrary protocol JSON through the
// non-stalling transform: any input the codec accepts must either be
// rejected by the transform with an error (never a panic) or produce a
// validated protocol that (a) has no message stalls left, (b) round
// trips through the codec, and (c) is a fixpoint — transforming again
// adds nothing. Seeds are the encoded built-ins and composites; the
// checked-in corpus under testdata/fuzz adds mutated raw forms on top.
func FuzzTransformRoundTrip(f *testing.F) {
	for _, seed := range transformSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := protocol.Decode(data)
		if err != nil {
			return // only codec-valid protocols are in scope
		}
		ns, err := NonStalling(p)
		if err != nil {
			return // rejection (ack-arithmetic stall, name clash) is fine
		}
		for _, c := range ns.Controllers() {
			for key, tr := range c.Transitions {
				if tr.Stall && !key.Event.IsCore() {
					t.Fatalf("message stall survived: %v/%s/%s", c.Kind, key.State, key.Event)
				}
			}
		}
		if got := analysis.Analyze(ns).Stalls.Pairs(); len(got) != 0 {
			t.Fatalf("stalls relation nonempty after transform: %v", got)
		}
		enc, err := protocol.Encode(ns)
		if err != nil {
			t.Fatalf("transformed protocol does not encode: %v", err)
		}
		back, err := protocol.Decode(enc)
		if err != nil {
			t.Fatalf("transformed protocol does not decode: %v\n%s", err, enc)
		}
		again, err := NonStalling(back)
		if err != nil {
			t.Fatalf("transform is not re-applicable: %v", err)
		}
		if len(again.Messages) != len(ns.Messages) {
			t.Fatalf("transform not a fixpoint: %d messages became %d",
				len(ns.Messages), len(again.Messages))
		}
	})
}

// transformSeeds encodes every built-in and the campaign composites as
// the structured half of the corpus.
func transformSeeds() [][]byte {
	var out [][]byte
	add := func(p *protocol.Protocol, err error) {
		if err != nil {
			panic(err)
		}
		data, err := protocol.Encode(p)
		if err != nil {
			panic(err)
		}
		out = append(out, data)
	}
	for _, name := range protocols.Names() {
		add(protocols.MustLoad(name), nil)
	}
	add(Compose(protocols.MustLoad("MSI_blocking_cache"),
		protocols.MustLoad("MESI_blocking_cache"), "MSI_under_MESI"))
	add(Compose(protocols.MustLoad("MESI_blocking_cache"),
		protocols.MustLoad("MESI_blocking_cache"), "MESI_under_MESI"))
	return out
}
