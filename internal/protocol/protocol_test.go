package protocol

import (
	"strings"
	"testing"
)

// tiny builds a minimal valid protocol: one request, one response.
func tiny() *Builder {
	b := NewBuilder("tiny")
	b.Message("Req", Request)
	b.Message("Resp", DataResponse)
	c := b.Cache("I")
	c.Stable("I", "V")
	c.Transient("IV")
	c.On("I", CoreEv(Load)).Send("Req", ToDir).Goto("IV")
	c.On("IV", MsgEv("Resp")).Goto("V")
	c.StallOn("IV", CoreEv(Store))
	d := b.Dir("ID")
	d.Stable("ID")
	d.On("ID", MsgEv("Req")).Send("Resp", ToReq).Stay()
	return b
}

func TestBuilderHappyPath(t *testing.T) {
	p, err := tiny().Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "tiny" || len(p.Messages) != 2 {
		t.Fatalf("unexpected protocol %+v", p)
	}
	tr := p.Cache.Lookup("I", CoreEv(Load))
	if tr == nil || tr.Next != "IV" || len(tr.Sends()) != 1 {
		t.Fatalf("lookup wrong: %+v", tr)
	}
	if got := p.MessagesOfType(Request); len(got) != 1 || got[0] != "Req" {
		t.Fatalf("MessagesOfType = %v", got)
	}
}

func TestBuilderDuplicateMessage(t *testing.T) {
	b := tiny()
	b.Message("Req", Request)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "declared twice") {
		t.Fatalf("expected duplicate-message error, got %v", err)
	}
}

func TestBuilderDuplicateCell(t *testing.T) {
	b := tiny()
	b.Cache("I").On("I", CoreEv(Load)).Goto("V")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "defined twice") {
		t.Fatalf("expected duplicate-cell error, got %v", err)
	}
}

func TestValidateUndeclaredState(t *testing.T) {
	b := tiny()
	b.Cache("I").On("V", CoreEv(Load)).Goto("Nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "Nowhere") {
		t.Fatalf("expected undeclared-state error, got %v", err)
	}
}

func TestValidateUndeclaredMessage(t *testing.T) {
	b := tiny()
	b.Cache("I").On("V", MsgEv("Ghost")).Stay()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "Ghost") {
		t.Fatalf("expected undeclared-message error, got %v", err)
	}
}

func TestValidateStallInStableState(t *testing.T) {
	b := tiny()
	b.Cache("I").StallOn("V", MsgEv("Resp"))
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "stable state") {
		t.Fatalf("expected stable-stall error, got %v", err)
	}
}

func TestValidateNeverSentMessage(t *testing.T) {
	b := tiny()
	b.Message("Orphan", CtrlResponse)
	b.Cache("I").On("V", MsgEv("Orphan")).Stay() // received but never sent
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "never sent") {
		t.Fatalf("expected never-sent error, got %v", err)
	}
}

func TestValidateTransientInitial(t *testing.T) {
	b := NewBuilder("bad")
	b.Message("Req", Request)
	b.Message("Resp", DataResponse)
	c := b.Cache("IV")
	c.Transient("IV")
	c.On("IV", MsgEv("Resp")).Send("Req", ToDir).Stay()
	d := b.Dir("ID")
	d.Stable("ID")
	d.On("ID", MsgEv("Req")).Send("Resp", ToReq).Stay()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "transient") {
		t.Fatalf("expected transient-initial error, got %v", err)
	}
}

func TestValidateQualifierMismatch(t *testing.T) {
	b := tiny()
	// Resp declares no qualifier kind but is used with a qualifier.
	b.Cache("I").On("V", MsgQualEv("Resp", QLastAck)).Stay()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "qualifier") {
		t.Fatalf("expected qualifier error, got %v", err)
	}
}

func TestValidateDirOnlyDestinations(t *testing.T) {
	b := tiny()
	b.Cache("I").On("V", MsgEv("Resp")).Send("Resp", ToOwner).Stay()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "directory") {
		t.Fatalf("expected dir-only-dest error, got %v", err)
	}
}

func TestEventString(t *testing.T) {
	if got := CoreEv(Load).String(); got != "Load" {
		t.Errorf("core event = %q", got)
	}
	if got := MsgEv("Data").String(); got != "Data" {
		t.Errorf("msg event = %q", got)
	}
	if got := MsgQualEv("Data", QAckPositive).String(); got != "Data(ack>0)" {
		t.Errorf("qualified event = %q", got)
	}
}

func TestCellString(t *testing.T) {
	cases := []struct {
		t    *Transition
		want string
	}{
		{nil, ""},
		{&Transition{Stall: true}, "stall"},
		{&Transition{}, "hit"},
		{&Transition{Next: "M"}, "-/M"},
		{&Transition{Actions: []Action{{Kind: ASend, Msg: "GetS", To: ToDir}}, Next: "IS_D"},
			"send GetS to Dir/IS_D"},
	}
	for _, c := range cases {
		if got := CellString(c.t); got != c.want {
			t.Errorf("CellString(%+v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestFormatController(t *testing.T) {
	p, err := tiny().Build()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatController(p.Cache)
	for _, want := range []string{"Load", "IV", "stall", "send Req to Dir/IV"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	full := FormatProtocol(p)
	if !strings.Contains(full, "Directory controller") || !strings.Contains(full, "Req") {
		t.Errorf("protocol format incomplete:\n%s", full)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	p, err := tiny().Build()
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, data)
	}
	if q.Name != p.Name || len(q.Messages) != len(p.Messages) {
		t.Fatal("round trip lost data")
	}
	// Transition tables must survive the trip.
	for key, tr := range p.Cache.Transitions {
		got := q.Cache.Transitions[key]
		if got == nil {
			t.Fatalf("lost transition %v", key)
		}
		if got.Stall != tr.Stall || got.Next != tr.Next || len(got.Actions) != len(tr.Actions) {
			t.Fatalf("transition %v mismatch: %+v vs %+v", key, got, tr)
		}
	}
	// Re-encoding must be deterministic.
	data2, err := Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("encoding not canonical")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Decode([]byte(`{"name":"x","messages":[{"name":"m","type":"wat"}]}`)); err == nil {
		t.Fatal("expected unknown-type error")
	}
}
