package protocol

import (
	"fmt"
	"strings"
)

// CellString renders a transition in the Primer's compact cell
// notation: "stall", "hit" (empty action, no state change), action
// list, and "/NextState" suffix on a state change.
func CellString(t *Transition) string {
	if t == nil {
		return ""
	}
	if t.Stall {
		return "stall"
	}
	var parts []string
	for _, a := range t.Actions {
		parts = append(parts, a.String())
	}
	body := strings.Join(parts, "; ")
	switch {
	case body == "" && t.Next == "":
		return "hit"
	case body == "":
		return "-/" + t.Next
	case t.Next == "":
		return body
	default:
		return body + "/" + t.Next
	}
}

// FormatController renders a controller's transition table as ASCII,
// reproducing the shape of the paper's Figs. 1–2.
func FormatController(c *Controller) string {
	events := c.EventOrder()
	headers := make([]string, 1, len(events)+1)
	headers[0] = strings.ToUpper(c.Kind.String()[:1]) + c.Kind.String()[1:]
	for _, ev := range events {
		headers = append(headers, ev.String())
	}

	rows := [][]string{headers}
	for _, st := range c.StateNames() {
		row := make([]string, 1, len(events)+1)
		row[0] = st
		for _, ev := range events {
			row = append(row, CellString(c.Lookup(st, ev)))
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(headers))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("-+-")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatProtocol renders both controller tables plus the message
// declarations.
func FormatProtocol(p *Protocol) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Protocol %s\n\nMessages:\n", p.Name)
	for _, name := range p.MessageNames() {
		m := p.Messages[name]
		fmt.Fprintf(&b, "  %-16s %s", name, m.Type)
		if m.Ack != AckNone {
			if m.Ack == AckCarrier {
				b.WriteString(", ack carrier")
			} else {
				b.WriteString(", ack unit")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nCache controller (initial %s):\n%s", p.Cache.Initial, FormatController(p.Cache))
	if p.L2 != nil {
		fmt.Fprintf(&b, "\nL2 home controller (initial %s):\n%s", p.L2.Initial, FormatController(p.L2))
	}
	fmt.Fprintf(&b, "\nDirectory controller (initial %s):\n%s", p.Dir.Initial, FormatController(p.Dir))
	return b.String()
}
