package machine

import (
	"errors"
	"fmt"

	"minvn/internal/icn"
	"minvn/internal/protocol"
)

// RuleKind discriminates the three rule families of the transition
// system.
type RuleKind int

const (
	// RuleCore: a cache issues a processor event for an address.
	RuleCore RuleKind = iota
	// RuleDeliver: the head of a global buffer moves to its
	// destination's input FIFO.
	RuleDeliver
	// RuleProcess: an endpoint consumes the head of one of its input
	// FIFOs.
	RuleProcess
)

// Rule identifies one deterministic transition. Plan selects, for each
// message the firing sends (in action order), which global buffer
// receives it; plans are enumerated by Rules so that the model checker
// explores every insertion choice of the ICN model.
type Rule struct {
	Kind RuleKind

	// RuleCore fields.
	Cache int
	Addr  int
	Core  protocol.CoreEvent

	// RuleDeliver fields.
	VN  int
	Buf int

	// RuleProcess fields.
	Endpoint int
	PVN      int

	Plan []int
}

// String renders a rule compactly for traces and scenario matching.
func (r Rule) String() string {
	switch r.Kind {
	case RuleCore:
		return fmt.Sprintf("core c%d a%d %s plan=%v", r.Cache, r.Addr, r.Core, r.Plan)
	case RuleDeliver:
		return fmt.Sprintf("deliver vn%d buf%d", r.VN, r.Buf)
	default:
		return fmt.Sprintf("process ep%d vn%d plan=%v", r.Endpoint, r.PVN, r.Plan)
	}
}

// errBlocked marks a rule (or plan) that is disabled in the current
// state — not an error, just an absent transition.
var errBlocked = errors.New("blocked")

// violation builds an invariant-violation error.
func violation(format string, args ...any) error {
	return fmt.Errorf("invariant violation: "+format, args...)
}

// firing is the controller-side effect of a transition, before network
// insertion: next is the mutated state with the trigger consumed, outs
// the messages to insert.
type firing struct {
	next *state
	outs []icn.Message
}

// book is the directory-role bookkeeping an endpoint consults while
// processing: pointers to the entry holding owner/sharers/acks plus
// the endpoint-id range [lo,hi) of the clients that book tracks.
type book struct {
	owner   *uint8
	sharers *uint8
	acks    *int8
	lo, hi  int
}

// book returns the directory book endpoint ep uses for addr: the L2
// entry's inner fields at an L2 home (clients are the caches), the
// directory entry otherwise — whose clients are the caches in a flat
// system and the L2 homes in a two-level one.
func (s *System) book(st *state, ep, addr int) book {
	if s.isL2(ep) {
		e := &st.l2[addr]
		return book{&e.owner, &e.sharers, &e.acks, 0, s.cfg.Caches}
	}
	e := &st.dir[addr]
	lo, hi := 0, s.cfg.Caches
	if s.cfg.L2s > 0 {
		lo, hi = s.cfg.Caches, s.cfg.Caches+s.cfg.L2s
	}
	return book{&e.owner, &e.sharers, &e.acks, lo, hi}
}

// ackCounter returns the ack counter a message at the given level
// updates at endpoint ep: the cache entry's counter at a cache, the
// directory entry's at a directory, and — at an L2 home — the inner
// (directory-role) counter for inner traffic or the cache-role counter
// for its own outer transactions.
func (s *System) ackCounter(st *state, ep int, level protocol.MsgLevel, addr int) *int8 {
	switch {
	case s.isCache(ep):
		return &st.cache[ep][addr].acks
	case s.isL2(ep):
		if level == protocol.LevelOuter {
			return &st.l2[addr].cacheAcks
		}
		return &st.l2[addr].acks
	default:
		return &st.dir[addr].acks
	}
}

// ctrlAt returns endpoint ep's controller and current state name for
// addr.
func (s *System) ctrlAt(st *state, ep, addr int) (*protocol.Controller, string) {
	switch {
	case s.isCache(ep):
		return s.p.Cache, s.cacheStates[st.cache[ep][addr].state]
	case s.isL2(ep):
		return s.p.L2, s.l2States[st.l2[addr].state]
	default:
		return s.p.Dir, s.dirStates[st.dir[addr].state]
	}
}

// resolveEvent computes the qualified reception event for message m at
// endpoint ep (paper §II's table columns such as "Data from Dir
// (ack>0)" or "PutM from Owner").
func (s *System) resolveEvent(st *state, ep int, m icn.Message) protocol.Event {
	spec := s.msgs[m.Name]
	name := s.msgNames[m.Name]
	addr := int(m.Addr)
	switch spec.Qual {
	case protocol.QualDataSource:
		acks := *s.ackCounter(st, ep, spec.Level, addr)
		if int(acks)+int(m.Acks) == 0 {
			return protocol.MsgQualEv(name, protocol.QAckZero)
		}
		return protocol.MsgQualEv(name, protocol.QAckPositive)
	case protocol.QualAckUnit:
		acks := *s.ackCounter(st, ep, spec.Level, addr)
		if acks == 1 {
			return protocol.MsgQualEv(name, protocol.QLastAck)
		}
		return protocol.MsgQualEv(name, protocol.QNotLastAck)
	case protocol.QualOwnership:
		bk := s.book(st, ep, addr)
		if *bk.owner != 0 && *bk.owner-1 == m.Src {
			return protocol.MsgQualEv(name, protocol.QFromOwner)
		}
		return protocol.MsgQualEv(name, protocol.QFromNonOwner)
	case protocol.QualLastSharer:
		bk := s.book(st, ep, addr)
		if countSharersIn(*bk.sharers, m.Req, bk.lo, bk.hi) == 0 {
			return protocol.MsgQualEv(name, protocol.QLastSharer)
		}
		return protocol.MsgQualEv(name, protocol.QNotLastSharer)
	default:
		return protocol.MsgEv(name)
	}
}

// lookup finds the transition for ev in the given controller state,
// falling back to the unqualified column.
func lookup(c *protocol.Controller, stateName string, ev protocol.Event) *protocol.Transition {
	if t := c.Lookup(stateName, ev); t != nil {
		return t
	}
	if !ev.IsCore() && ev.Qual != protocol.QNone {
		return c.Lookup(stateName, protocol.MsgEv(ev.Msg))
	}
	return nil
}

// execute applies a transition at endpoint ep for addr. trigger is the
// consumed message (nil for core events); requestor is the requestor
// id for new messages. The trigger must already have been popped from
// its FIFO by the caller. Returns the out-messages in action order.
func (s *System) execute(st *state, ep, addr int, t *protocol.Transition,
	trigger *icn.Message, requestor uint8) (firing, error) {

	f := firing{next: st}

	// Automatic ack arithmetic at reception (paper §II tables'
	// "ack--"/"ack+=" semantics).
	if trigger != nil {
		spec := s.msgs[trigger.Name]
		switch spec.Qual {
		case protocol.QualDataSource:
			*s.ackCounter(st, ep, spec.Level, addr) += trigger.Acks
		case protocol.QualAckUnit:
			*s.ackCounter(st, ep, spec.Level, addr)--
		}
	}

	for _, a := range t.Actions {
		switch a.Kind {
		case protocol.ASend:
			msgSpec, ok := s.p.Messages[a.Msg]
			if !ok {
				return f, violation("endpoint %d sends undeclared message %q", ep, a.Msg)
			}
			var dsts []int
			bk := s.book(st, ep, addr)
			switch a.To {
			case protocol.ToDir:
				// Inner traffic targets the tier's home (the L2 in a
				// two-level system), outer traffic the directory.
				if msgSpec.Level == protocol.LevelOuter {
					dsts = []int{s.home(addr)}
				} else {
					dsts = []int{s.innerHome(addr)}
				}
			case protocol.ToReq:
				dsts = []int{int(requestor)}
			case protocol.ToOwner:
				if *bk.owner == 0 {
					return f, violation("directory for a%d sends %s to missing owner", addr, a.Msg)
				}
				dsts = []int{int(*bk.owner - 1)}
			case protocol.ToSharers:
				dsts = append(dsts, sharersIn(*bk.sharers, requestor, bk.lo, bk.hi)...)
			case protocol.ToSaved:
				ce := &st.cache[ep][addr]
				if ce.saved == 0 {
					return f, violation("cache %d a%d sends %s to empty saved register", ep, addr, a.Msg)
				}
				dsts = []int{int(ce.saved - 1)}
			case protocol.ToSelf:
				dsts = []int{ep}
			default:
				return f, violation("unknown destination %v", a.To)
			}
			var acks int8
			switch {
			case a.WithAcks:
				acks = int8(countSharersIn(*bk.sharers, requestor, bk.lo, bk.hi))
			case a.To == protocol.ToSaved && msgSpec.Ack == protocol.AckCarrier:
				acks = st.cache[ep][addr].savedAcks
			case a.Inherit && trigger != nil:
				acks = trigger.Acks
			}
			req := requestor
			if a.To == protocol.ToSaved || a.ReqSaved {
				// The deferred response answers the recorded
				// requestor's transaction.
				ce := &st.cache[ep][addr]
				if ce.saved == 0 {
					return f, violation("cache %d a%d sends %s with empty saved register", ep, addr, a.Msg)
				}
				req = ce.saved - 1
			}
			if msgSpec.Level == protocol.LevelOuter && s.isL2(ep) {
				// The L2 home is the requestor of its own outer
				// transactions, even when an inner request triggered
				// the send (the composer's launch transitions).
				req = uint8(ep)
			}
			src := uint8(ep)
			if a.To == protocol.ToSelf && trigger != nil {
				// A self-requeue re-enqueues the message it is
				// processing, so the replay keeps the original sender
				// and ownership qualifiers resolve identically.
				src = trigger.Src
			}
			for _, d := range dsts {
				if d == ep && a.To != protocol.ToSelf {
					return f, violation("endpoint %d sends %s to itself", ep, a.Msg)
				}
				f.outs = append(f.outs, icn.Message{
					Name: s.msgIdx[a.Msg],
					Addr: uint8(addr),
					Src:  src,
					Req:  req,
					Dst:  uint8(d),
					Acks: acks,
				})
			}
			if a.To == protocol.ToSaved || a.ReqSaved {
				st.cache[ep][addr].saved = 0
				st.cache[ep][addr].savedAcks = 0
			}

		case protocol.ARecordSaved:
			if !s.isCache(ep) || trigger == nil {
				return f, violation("RecordSaved outside cache message processing")
			}
			ce := &st.cache[ep][addr]
			if ce.saved != 0 {
				return f, violation("cache %d a%d defers a second forward (%s) with one saved register",
					ep, addr, s.msgNames[trigger.Name])
			}
			ce.saved = trigger.Req + 1
			ce.savedAcks = trigger.Acks

		case protocol.ASetOwnerToReq:
			*s.book(st, ep, addr).owner = requestor + 1
		case protocol.AClearOwner:
			*s.book(st, ep, addr).owner = 0
		case protocol.AAddReqToSharers:
			*s.book(st, ep, addr).sharers |= 1 << uint(requestor)
		case protocol.AAddOwnerToSharers:
			bk := s.book(st, ep, addr)
			if *bk.owner == 0 {
				return f, violation("AddOwnerToSharers with no owner (a%d)", addr)
			}
			if int(*bk.owner-1) < bk.lo || int(*bk.owner-1) >= bk.hi {
				return f, violation("owner %d is not a client (a%d)", *bk.owner-1, addr)
			}
			*bk.sharers |= 1 << uint(*bk.owner-1)
		case protocol.ARemoveReqFromSharers:
			*s.book(st, ep, addr).sharers &^= 1 << uint(requestor)
		case protocol.AClearSharers:
			*s.book(st, ep, addr).sharers = 0
		case protocol.AExpectAcks:
			bk := s.book(st, ep, addr)
			*bk.acks += int8(countSharersIn(*bk.sharers, requestor, bk.lo, bk.hi))
		case protocol.ACopyToMem:
			// Memory contents are not modeled; deadlock behaviour is
			// unaffected.
		default:
			return f, violation("unknown action kind %v", a.Kind)
		}
	}

	if t.Next != "" {
		switch {
		case s.isCache(ep):
			idx, ok := s.cacheStateIdx[t.Next]
			if !ok {
				return f, violation("cache next state %q undeclared", t.Next)
			}
			st.cache[ep][addr].state = idx
		case s.isL2(ep):
			idx, ok := s.l2StateIdx[t.Next]
			if !ok {
				return f, violation("l2 next state %q undeclared", t.Next)
			}
			st.l2[addr].state = idx
		default:
			idx, ok := s.dirStateIdx[t.Next]
			if !ok {
				return f, violation("directory next state %q undeclared", t.Next)
			}
			st.dir[addr].state = idx
		}
	}
	return f, nil
}

// planChoices returns, for each out-message, the allowed global
// buffers.
func (s *System) planChoices(outs []icn.Message) [][]int {
	choices := make([][]int, len(outs))
	for i, m := range outs {
		choices[i] = s.net.BufferChoices(m.Src, m.Dst)
	}
	return choices
}

// enumeratePlans expands the cartesian product of per-message buffer
// choices.
func enumeratePlans(choices [][]int) [][]int {
	plans := [][]int{nil}
	for _, cs := range choices {
		var next [][]int
		for _, p := range plans {
			for _, c := range cs {
				np := make([]int, len(p)+1)
				copy(np, p)
				np[len(p)] = c
				next = append(next, np)
			}
		}
		plans = next
	}
	return plans
}

// insert places the out-messages per plan, or errBlocked if any chosen
// buffer lacks room.
func (s *System) insert(st *state, outs []icn.Message, plan []int) error {
	if len(plan) != len(outs) {
		return violation("plan length %d for %d messages", len(plan), len(outs))
	}
	for i, m := range outs {
		vn := s.vnOf[m.Name]
		if !st.net.CanSend(s.net, vn, plan[i]) {
			return errBlocked
		}
		st.net.Send(vn, plan[i], m)
	}
	return nil
}

// applyCore fires a core event; returns errBlocked when disabled.
func (s *System) applyCore(st *state, r Rule) (*state, error) {
	entry := st.cache[r.Cache][r.Addr]
	stateName := s.cacheStates[entry.state]
	t := lookup(s.p.Cache, stateName, protocol.CoreEv(r.Core))
	if t == nil || t.Stall {
		return nil, errBlocked
	}
	next := st.clone()
	f, err := s.execute(next, r.Cache, r.Addr, t, nil, uint8(r.Cache))
	if err != nil {
		return nil, err
	}
	if err := s.insert(f.next, f.outs, r.Plan); err != nil {
		return nil, err
	}
	return f.next, nil
}

// applyDeliver moves a global-buffer head to its destination FIFO.
func (s *System) applyDeliver(st *state, r Rule) (*state, error) {
	if !st.net.CanDeliver(s.net, r.VN, r.Buf) {
		return nil, errBlocked
	}
	next := st.clone()
	next.net.Deliver(r.VN, r.Buf)
	return next, nil
}

// applyProcess consumes the head of an endpoint's input FIFO.
func (s *System) applyProcess(st *state, r Rule) (*state, error) {
	m, ok := st.net.Head(r.Endpoint, r.PVN)
	if !ok {
		return nil, errBlocked
	}
	addr := int(m.Addr)
	ctrl, stateName := s.ctrlAt(st, r.Endpoint, addr)
	if !s.isCache(r.Endpoint) {
		home := s.home(addr)
		if s.isL2(r.Endpoint) {
			home = s.innerHome(addr)
		}
		if home != r.Endpoint {
			return nil, violation("message for a%d delivered to wrong home ep%d", addr, r.Endpoint)
		}
	}
	ev := s.resolveEvent(st, r.Endpoint, m)
	t := lookup(ctrl, stateName, ev)
	if t == nil {
		return nil, violation("%s ep%d in state %s has no transition for %s",
			ctrl.Kind, r.Endpoint, stateName, ev)
	}
	if t.Stall {
		return nil, errBlocked
	}
	next := st.clone()
	popped := next.net.PopLocal(r.Endpoint, r.PVN)
	f, err := s.execute(next, r.Endpoint, addr, t, &popped, popped.Req)
	if err != nil {
		return nil, err
	}
	if err := s.insert(f.next, f.outs, r.Plan); err != nil {
		return nil, err
	}
	return f.next, nil
}

// emitPlans clones the executed firing once per feasible buffer plan
// and emits the completed successor.
func (s *System) emitPlans(f firing, mk func(plan []int) Rule, emit func(Rule, *state)) {
	plans := enumeratePlans(s.planChoices(f.outs))
	for i, plan := range plans {
		cand := f.next
		if i < len(plans)-1 {
			cand = f.next.clone()
		}
		if err := s.insert(cand, f.outs, plan); err != nil {
			continue // errBlocked: this plan's buffer is full
		}
		emit(mk(plan), cand)
	}
}

// rules enumerates every enabled rule in st, invoking emit with the
// rule and its successor. A non-nil return aborts with an invariant
// violation. Each transition executes once; per-plan successors are
// clones of the executed state with the sends inserted.
func (s *System) rules(st *state, emit func(Rule, *state)) error {
	// Core events.
	coreEvents := s.cfg.CoreEvents
	if coreEvents == nil {
		coreEvents = protocol.CoreEvents
	}
	for c := 0; c < s.cfg.Caches; c++ {
		for a := 0; a < s.cfg.Addrs; a++ {
			stateName := s.cacheStates[st.cache[c][a].state]
			for _, core := range coreEvents {
				t := lookup(s.p.Cache, stateName, protocol.CoreEv(core))
				if t == nil || t.Stall {
					continue
				}
				f, err := s.execute(st.clone(), c, a, t, nil, uint8(c))
				if err != nil {
					return err
				}
				core := core
				s.emitPlans(f, func(plan []int) Rule {
					return Rule{Kind: RuleCore, Cache: c, Addr: a, Core: core, Plan: plan}
				}, emit)
			}
		}
	}

	// Deliveries.
	for vn := 0; vn < s.net.NumVNs; vn++ {
		for buf := 0; buf < 2; buf++ {
			r := Rule{Kind: RuleDeliver, VN: vn, Buf: buf}
			next, err := s.applyDeliver(st, r)
			if err == errBlocked {
				continue
			}
			if err != nil {
				return err
			}
			emit(r, next)
		}
	}

	// Processing.
	for ep := 0; ep < s.endpoints; ep++ {
		for vn := 0; vn < s.net.NumVNs; vn++ {
			m, ok := st.net.Head(ep, vn)
			if !ok {
				continue
			}
			addr := int(m.Addr)
			ctrl, stateName := s.ctrlAt(st, ep, addr)
			ev := s.resolveEvent(st, ep, m)
			t := lookup(ctrl, stateName, ev)
			if t == nil {
				return violation("%s ep%d in state %s has no transition for %s",
					ctrl.Kind, ep, stateName, ev)
			}
			if t.Stall {
				continue
			}
			next := st.clone()
			popped := next.net.PopLocal(ep, vn)
			f, err := s.execute(next, ep, addr, t, &popped, popped.Req)
			if err != nil {
				return err
			}
			ep, vn := ep, vn
			s.emitPlans(f, func(plan []int) Rule {
				return Rule{Kind: RuleProcess, Endpoint: ep, PVN: vn, Plan: plan}
			}, emit)
		}
	}
	return nil
}
