package machine

import (
	"strings"
	"testing"

	"minvn/internal/protocols"
)

// TestConfigValidation: New rejects malformed configurations with
// actionable errors.
func TestConfigValidation(t *testing.T) {
	p := protocols.MustLoad("MSI_blocking_cache")
	vn, n := UniformVN(p)
	base := Config{Protocol: p, Caches: 2, Dirs: 1, Addrs: 1, VN: vn, NumVNs: n}

	cases := []struct {
		name   string
		mutate func(c Config) Config
		want   string
	}{
		{"no protocol", func(c Config) Config { c.Protocol = nil; return c }, "no protocol"},
		{"zero caches", func(c Config) Config { c.Caches = 0; return c }, "caches"},
		{"too many caches", func(c Config) Config { c.Caches = 9; return c }, "caches"},
		{"zero dirs", func(c Config) Config { c.Dirs = 0; return c }, "directory"},
		{"idle dirs", func(c Config) Config { c.Dirs = 2; c.Addrs = 1; return c }, "idle"},
		{"zero VNs", func(c Config) Config { c.NumVNs = 0; return c }, "NumVNs"},
		{"missing mapping", func(c Config) Config {
			m := map[string]int{"GetS": 0}
			c.VN = m
			return c
		}, "no VN assignment"},
		{"out of range VN", func(c Config) Config {
			m := map[string]int{}
			for k := range vn {
				m[k] = 5
			}
			c.VN = m
			return c
		}, "outside"},
		{"oversize buffers", func(c Config) Config { c.GlobalCap = 10_000; return c }, "capacities"},
	}
	for _, tc := range cases {
		if _, err := New(tc.mutate(base)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestDefaultCapacitiesFollowFootnote5.
func TestDefaultCapacitiesFollowFootnote5(t *testing.T) {
	p := protocols.MustLoad("MSI_blocking_cache")
	vn, n := UniformVN(p)
	sys, err := New(Config{Protocol: p, Caches: 3, Dirs: 2, Addrs: 2, VN: vn, NumVNs: n})
	if err != nil {
		t.Fatal(err)
	}
	e := 5 // endpoints
	if got, want := sys.Config().GlobalCap, 2*e*(e-1); got != want {
		t.Errorf("GlobalCap = %d, want %d", got, want)
	}
	if got, want := sys.Config().LocalCap, 2*(e-1); got != want {
		t.Errorf("LocalCap = %d, want %d", got, want)
	}
}

// TestDescribeAndQuiescent on the initial state.
func TestDescribeInitial(t *testing.T) {
	p := protocols.MustLoad("CHI")
	vn, n := UniformVN(p)
	sys, err := New(Config{Protocol: p, Caches: 2, Dirs: 1, Addrs: 1, VN: vn, NumVNs: n})
	if err != nil {
		t.Fatal(err)
	}
	init := sys.Initial()[0]
	if !sys.Quiescent(init) {
		t.Error("initial state should be quiescent")
	}
	desc := sys.Describe(init)
	if !strings.Contains(desc, "cache 0") || !strings.Contains(desc, "dir(a0)") {
		t.Errorf("describe incomplete:\n%s", desc)
	}
	if sys.InFlight(init) != 0 {
		t.Error("messages in flight at reset")
	}
}
