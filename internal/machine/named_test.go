package machine

import (
	"strings"
	"testing"
)

// TestSuccessorsNamedParity: SuccessorsNamed must produce exactly the
// successor sequence of Successors, with one well-formed rule label
// per successor.
func TestSuccessorsNamedParity(t *testing.T) {
	for _, proto := range []string{"MSI_nonblocking_cache", "MSI_blocking_cache", "CHI"} {
		sys := newSys(t, proto, 2, 1, 1, "permsg")

		// Walk a BFS prefix comparing both expansion paths state by
		// state.
		frontier := sys.Initial()
		seen := map[string]bool{}
		checked := 0
		for len(frontier) > 0 && checked < 300 {
			var next [][]byte
			for _, st := range frontier {
				k := string(sys.Canonicalize(st))
				if seen[k] {
					continue
				}
				seen[k] = true
				checked++

				plain, err := sys.Successors(st)
				if err != nil {
					t.Fatalf("%s: Successors: %v", proto, err)
				}
				named, labels, err := sys.SuccessorsNamed(st)
				if err != nil {
					t.Fatalf("%s: SuccessorsNamed: %v", proto, err)
				}
				if len(named) != len(plain) {
					t.Fatalf("%s: %d named vs %d plain successors", proto, len(named), len(plain))
				}
				if len(labels) != len(named) {
					t.Fatalf("%s: %d labels for %d successors", proto, len(labels), len(named))
				}
				for i := range plain {
					if string(named[i]) != string(plain[i]) {
						t.Fatalf("%s: successor %d differs between paths", proto, i)
					}
					l := labels[i]
					if !strings.HasPrefix(l, "core/") &&
						!strings.HasPrefix(l, "deliver/vn") &&
						!strings.HasPrefix(l, "process/") {
						t.Fatalf("%s: malformed rule label %q", proto, l)
					}
					if strings.HasSuffix(l, "/") || strings.HasSuffix(l, "/?") {
						t.Fatalf("%s: unresolved rule label %q", proto, l)
					}
				}
				next = append(next, named...)
			}
			frontier = next
		}
		if checked < 10 {
			t.Fatalf("%s: parity walk covered only %d states", proto, checked)
		}
	}
}
