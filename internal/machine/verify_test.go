package machine

import (
	"strings"
	"testing"

	"minvn/internal/mc"
	"minvn/internal/protocol"
	"minvn/internal/protocols"
	"minvn/internal/vnassign"
)

// ownershipSeed establishes the Fig. 3 prefix: caches 0 and 1 own
// addresses 0 and 1 in M.
func ownershipSeed(t *testing.T, sys *System, caches, dirs int) []byte {
	t.Helper()
	sc := NewScenario(sys)
	for i := 0; i < 2; i++ {
		home := caches + i%dirs
		if err := sc.Core(i, i, protocol.Store); err != nil {
			t.Fatal(err)
		}
		if err := sc.Handle(home, "GetM", i); err != nil {
			t.Fatal(err)
		}
		if err := sc.Handle(i, "Data", i); err != nil {
			t.Fatal(err)
		}
	}
	return sc.State()
}

// TestClass2DeadlocksUnderPerMessageVNs is the model-checked half of
// Table I's cells (2) and (6): the blocking-cache protocols deadlock
// even when every message name has its own virtual network.
func TestClass2DeadlocksUnderPerMessageVNs(t *testing.T) {
	for _, proto := range []string{
		"MSI_blocking_cache", "MESI_blocking_cache", "MESIF_blocking_cache",
		"MOSI_blocking_cache", "MOESI_blocking_cache",
	} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			p := protocols.MustLoad(proto)
			vn, n := PerMessageVN(p)
			cfg := Config{
				Protocol: p, Caches: 3, Dirs: 2, Addrs: 2,
				VN: vn, NumVNs: n}
			if strings.HasPrefix(proto, "MO") {
				// Never-blocking directories let forwards pile up
				// past the single saved register during evictions;
				// the deadlock needs only loads and stores (see
				// DESIGN.md).
				cfg.CoreEvents = []protocol.CoreEvent{protocol.Load, protocol.Store}
			}
			sys, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			seed := ownershipSeed(t, sys, 3, 2)
			res := mc.Check(&Seeded{System: sys, Seeds: [][]byte{seed}},
				mc.Options{Strategy: mc.DFS, MaxStates: 600_000, DisableTraces: true})
			if res.Outcome != mc.Deadlock {
				t.Fatalf("expected deadlock, got %v (%s)", res, res.Message)
			}
		})
	}
}

// TestClass3MinimalAssignmentVerifies is the model-checked half of
// cells (4) and (5): under the computed minimal assignment, small
// instances explore completely with no deadlock and no undefined
// transition.
func TestClass3MinimalAssignmentVerifies(t *testing.T) {
	for _, proto := range []string{
		"MSI_nonblocking_cache", "MESI_nonblocking_cache",
		"MESIF_nonblocking_cache", "CHI", "TileLink", "MSI_completion", "CXL_cache",
	} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			p := protocols.MustLoad(proto)
			a := vnassign.Assign(p)
			if a.Class != vnassign.Class3 {
				t.Fatalf("not Class 3: %v", a.Class)
			}
			sys, err := New(Config{
				Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
				VN: a.VN, NumVNs: a.NumVNs})
			if err != nil {
				t.Fatal(err)
			}
			res := mc.Check(sys, mc.Options{MaxStates: 2_000_000, DisableTraces: true})
			if res.Outcome != mc.Complete {
				t.Fatalf("expected complete, got %v: %s", res, res.Message)
			}
		})
	}
}

// TestClass3SingleVNDeadlocks: the same protocols wedge when
// everything shares one VN — the queues relation the minimal
// assignment exists to break.
func TestClass3SingleVNDeadlocks(t *testing.T) {
	for _, proto := range []string{"MSI_nonblocking_cache", "CHI", "TileLink"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			p := protocols.MustLoad(proto)
			vn, n := UniformVN(p)
			sys, err := New(Config{
				Protocol: p, Caches: 3, Dirs: 1, Addrs: 2,
				VN: vn, NumVNs: n})
			if err != nil {
				t.Fatal(err)
			}
			res := mc.Check(sys, mc.Options{Strategy: mc.DFS, MaxStates: 600_000, DisableTraces: true})
			if res.Outcome != mc.Deadlock {
				t.Fatalf("expected deadlock with 1 VN, got %v (%s)", res, res.Message)
			}
		})
	}
}

// TestClass1ProtocolDeadlock: the §V-A protocol (Inv stalled in
// SM_AD) deadlocks with ONE address and per-message VNs — the paper's
// definition of a protocol deadlock.
func TestClass1ProtocolDeadlock(t *testing.T) {
	p := protocols.MustLoad("MSI_class1")
	vn, n := PerMessageVN(p)
	sys, err := New(Config{
		Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
		VN: vn, NumVNs: n})
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Check(sys, mc.Options{Strategy: mc.DFS, MaxStates: 600_000, DisableTraces: true})
	if res.Outcome != mc.Deadlock {
		t.Fatalf("expected protocol deadlock, got %v (%s)", res, res.Message)
	}
}

// TestBaseMSINoProtocolDeadlock: under the same single-address
// configuration the unmodified MSI does NOT deadlock — confirming the
// deadlock above is the protocol bug, not an artifact of the model.
func TestBaseMSINoProtocolDeadlock(t *testing.T) {
	p := protocols.MustLoad("MSI_blocking_cache")
	vn, n := PerMessageVN(p)
	sys, err := New(Config{
		Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
		VN: vn, NumVNs: n})
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Check(sys, mc.Options{MaxStates: 2_000_000, DisableTraces: true})
	if res.Outcome != mc.Complete {
		t.Fatalf("expected complete with one address, got %v: %s", res, res.Message)
	}
}

// TestPointToPointOrderingAlsoVerifies: the minimal assignment also
// survives every static point-to-point mapping variant (paper
// §VII-A.1's ordered mode).
func TestPointToPointOrderingAlsoVerifies(t *testing.T) {
	p := protocols.MustLoad("MSI_nonblocking_cache")
	a := vnassign.Assign(p)
	for variant := 0; variant < 4; variant++ {
		sys, err := New(Config{
			Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
			VN: a.VN, NumVNs: a.NumVNs, PointToPoint: true, P2PVariant: variant,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := mc.Check(sys, mc.Options{MaxStates: 2_000_000, DisableTraces: true})
		if res.Outcome != mc.Complete {
			t.Fatalf("variant %d: %v: %s", variant, res, res.Message)
		}
	}
}

// TestSymmetryReductionSoundness: with and without cache symmetry
// reduction the verdicts agree, and reduction shrinks the state count.
func TestSymmetryReductionSoundness(t *testing.T) {
	p := protocols.MustLoad("MSI_nonblocking_cache")
	a := vnassign.Assign(p)
	run := func(noSym bool) mc.Result {
		sys, err := New(Config{
			Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
			VN: a.VN, NumVNs: a.NumVNs, NoSymmetry: noSym,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mc.Check(sys, mc.Options{MaxStates: 2_000_000, DisableTraces: true})
	}
	with, without := run(false), run(true)
	if with.Outcome != mc.Complete || without.Outcome != mc.Complete {
		t.Fatalf("outcomes: %v / %v", with, without)
	}
	if with.States >= without.States {
		t.Fatalf("symmetry reduction did not reduce states: %d vs %d",
			with.States, without.States)
	}
}

// TestParallelCheckOnSystem: the System's Successors is safe for the
// parallel BFS engine (run under -race in CI) and produces identical
// results.
func TestParallelCheckOnSystem(t *testing.T) {
	p := protocols.MustLoad("CHI")
	a := vnassign.Assign(p)
	sys, err := New(Config{
		Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
		VN: a.VN, NumVNs: a.NumVNs})
	if err != nil {
		t.Fatal(err)
	}
	seq := mc.Check(sys, mc.Options{DisableTraces: true})
	par := mc.CheckParallel(sys, mc.Options{DisableTraces: true}, 4)
	if seq.Outcome != mc.Complete || par.Outcome != seq.Outcome || par.States != seq.States {
		t.Fatalf("sequential %v vs parallel %v", seq, par)
	}
}
