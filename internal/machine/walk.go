package machine

import (
	"fmt"
	"math/rand"
)

// RandomWalk drives the system with a pseudo-random workload: at every
// step one enabled rule is chosen uniformly and applied. It is the
// quick smoke-test and throughput-measurement counterpart of
// exhaustive model checking — the "run a workload over the protocol"
// tool — and doubles as a cheap deadlock probe: a walk that wedges has
// found a real deadlock (though a clean walk proves nothing).
type WalkResult struct {
	Steps      int  // rules applied
	Deadlocked bool // reached a state with no enabled rules, not quiescent
	Quiesced   bool // the protocol drained and the walk hit the step budget idle
	// RuleMix counts applied rules by kind.
	RuleMix map[RuleKind]int
	// Violation carries an invariant/undefined-transition error, if hit.
	Violation error
	// Final is the last state reached.
	Final []byte
}

// Walk runs up to maxSteps random steps from the initial state.
func (s *System) Walk(seed int64, maxSteps int) WalkResult {
	return s.WalkFrom(s.Initial()[0], seed, maxSteps)
}

// WalkFrom runs a random walk from a given encoded state.
func (s *System) WalkFrom(start []byte, seed int64, maxSteps int) WalkResult {
	rng := rand.New(rand.NewSource(seed))
	res := WalkResult{RuleMix: make(map[RuleKind]int), Final: start}

	cur := start
	for res.Steps < maxSteps {
		st := s.decode(cur)
		if err := s.checkInvariants(st); err != nil {
			res.Violation = err
			break
		}
		type cand struct {
			r    Rule
			next *state
		}
		var cands []cand
		err := s.rules(st, func(r Rule, next *state) {
			cands = append(cands, cand{r, next})
		})
		if err != nil {
			res.Violation = err
			break
		}
		if len(cands) == 0 {
			if s.Quiescent(cur) {
				res.Quiesced = true
			} else {
				res.Deadlocked = true
			}
			break
		}
		pick := cands[rng.Intn(len(cands))]
		res.RuleMix[pick.r.Kind]++
		cur = s.encode(pick.next)
		res.Steps++
	}
	res.Final = cur
	return res
}

// String summarizes a walk.
func (r WalkResult) String() string {
	status := "budget exhausted"
	switch {
	case r.Violation != nil:
		status = "VIOLATION: " + r.Violation.Error()
	case r.Deadlocked:
		status = "DEADLOCK"
	case r.Quiesced:
		status = "quiesced"
	}
	return fmt.Sprintf("%d steps (%d core, %d deliver, %d process): %s",
		r.Steps, r.RuleMix[RuleCore], r.RuleMix[RuleDeliver], r.RuleMix[RuleProcess], status)
}
