package machine

import (
	"strings"
	"testing"

	"minvn/internal/mc"
	"minvn/internal/protocol"
	"minvn/internal/protocols"
	"minvn/internal/vnassign"
)

// TestSWMRHoldsForClass3Protocols: complete exploration with the SWMR
// and bookkeeping invariants enabled — the Murphi-style safety net on
// top of deadlock freedom.
func TestSWMRHoldsForClass3Protocols(t *testing.T) {
	for _, proto := range []string{
		"MSI_nonblocking_cache", "MESI_nonblocking_cache",
		"MESIF_nonblocking_cache", "CHI", "TileLink", "MSI_completion", "CXL_cache",
	} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			p := protocols.MustLoad(proto)
			a := vnassign.Assign(p)
			sys, err := New(Config{
				Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
				VN: a.VN, NumVNs: a.NumVNs,
				Invariants: true,
				Permissions: map[string]Permission{
					"T": PermWrite, "B": PermRead, "N": PermNone,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			res := mc.Check(sys, mc.Options{MaxStates: 2_000_000, DisableTraces: true})
			if res.Outcome != mc.Complete {
				t.Fatalf("%v: %s", res, res.Message)
			}
		})
	}
}

// TestSWMRHoldsUnderPerMessageVNs widens the check to the blocking MSI
// on a single address (where it is deadlock-free).
func TestSWMRHoldsUnderPerMessageVNs(t *testing.T) {
	p := protocols.MustLoad("MSI_blocking_cache")
	vn, n := PerMessageVN(p)
	sys, err := New(Config{
		Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
		VN: vn, NumVNs: n,
		Invariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Check(sys, mc.Options{MaxStates: 2_000_000, DisableTraces: true})
	if res.Outcome != mc.Complete {
		t.Fatalf("%v: %s", res, res.Message)
	}
}

// TestSWMRHoldsForMOSIUnderOrdering: the never-blocking-directory
// protocols rely on point-to-point ordering for their eviction and
// upgrade races (as real implementations of MOSI-family protocols do);
// under the ordered ICN mode with a single VN — exactly the paper's
// experiment (1) configuration — they explore completely with the
// coherence invariants enabled, on every static mapping variant.
func TestSWMRHoldsForMOSIUnderOrdering(t *testing.T) {
	for _, proto := range []string{"MOSI_nonblocking_cache", "MOESI_nonblocking_cache"} {
		proto := proto
		t.Run(proto, func(t *testing.T) {
			p := protocols.MustLoad(proto)
			vn, n := UniformVN(p)
			for variant := 0; variant < 4; variant++ {
				sys, err := New(Config{
					Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
					VN: vn, NumVNs: n,
					Invariants:   true,
					PointToPoint: true, P2PVariant: variant,
				})
				if err != nil {
					t.Fatal(err)
				}
				res := mc.Check(sys, mc.Options{MaxStates: 2_000_000, DisableTraces: true})
				if res.Outcome != mc.Complete {
					t.Fatalf("variant %d: %v: %s", variant, res, res.Message)
				}
			}
		})
	}
}

// TestInvariantCatchesBrokenProtocol: sabotage MSI so two caches can
// be Modified at once (the directory forgets to invalidate the owner
// on GetM) and confirm the checker reports an SWMR violation.
func TestInvariantCatchesBrokenProtocol(t *testing.T) {
	p := protocols.MustLoad("MSI_blocking_cache")
	p.Name = "MSI_broken"
	// Sabotage: dir in M grants a second M without forwarding —
	// sends fresh Data to the requestor and leaves the old owner be.
	key := findCell(t, p, "M", "GetM")
	p.Dir.Transitions[key] = cellSendDataSetOwner()

	vn, n := PerMessageVN(p)
	sys, err := New(Config{
		Protocol: p, Caches: 2, Dirs: 1, Addrs: 1,
		VN: vn, NumVNs: n,
		Invariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Check(sys, mc.Options{MaxStates: 500_000})
	if res.Outcome != mc.Violation || !strings.Contains(res.Message, "SWMR") {
		t.Fatalf("expected SWMR violation, got %v: %s", res, res.Message)
	}
	if len(res.Trace) == 0 {
		t.Fatal("violation without a trace")
	}
}

// findCell locates the unqualified-message cell, t.Fatal-ing if absent.
func findCell(t *testing.T, p *protocol.Protocol, state, msg string) protocol.TransKey {
	t.Helper()
	key := protocol.TransKey{State: state, Event: protocol.MsgEv(msg)}
	if p.Dir.Transitions[key] == nil {
		t.Fatalf("cell (%s,%s) not found", state, msg)
	}
	return key
}

// cellSendDataSetOwner builds the sabotaged transition.
func cellSendDataSetOwner() *protocol.Transition {
	return &protocol.Transition{
		Actions: []protocol.Action{
			{Kind: protocol.ASend, Msg: "Data", To: protocol.ToReq},
			{Kind: protocol.ASetOwnerToReq},
		},
	}
}
