package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Deadlock explanation: given a wedged state, reconstruct the wait-for
// graph between endpoints in the paper's vocabulary — which queue
// heads are stalled (waits edges), which messages are queued behind
// them (queues edges), and the cycle that closes the deadlock. This is
// the dynamic counterpart of Eq. 4 and turns a raw counterexample into
// the kind of narrative the paper uses for Fig. 3.

// BlockedHead describes one stalled input-FIFO head.
type BlockedHead struct {
	Endpoint     int
	VN           int
	Msg          string
	Addr         int
	State        string // controller state doing the stalling
	QueuedBehind []QueuedMsg
}

// QueuedMsg is a message stuck behind a stalled head.
type QueuedMsg struct {
	Msg  string
	Addr int
	Src  int
	Req  int
}

// Explanation is the analysis of a wedged (or wedging) state.
type Explanation struct {
	Blocked []BlockedHead
	// PendingTransients lists controllers sitting in transient states
	// with empty queues — they wait for messages that are stuck
	// elsewhere.
	PendingTransients []string
	// CycleHint names message kinds that appear both stalled and
	// queued-behind — the same-name collisions that make Class 2
	// protocols unfixable.
	CycleHint []string
}

// Explain analyzes an encoded state.
func (s *System) Explain(raw []byte) *Explanation {
	st := s.decode(raw)
	ex := &Explanation{}

	stalledNames := map[string]bool{}
	queuedNames := map[string]bool{}

	for ep := 0; ep < s.endpoints; ep++ {
		for vn := 0; vn < s.net.NumVNs; vn++ {
			q := st.net.Local[ep][vn]
			if len(q) == 0 {
				continue
			}
			m := q[0]
			ctrl, stateName := s.ctrlAt(st, ep, int(m.Addr))
			ev := s.resolveEvent(st, ep, m)
			t := lookup(ctrl, stateName, ev)
			if t == nil || !t.Stall {
				continue
			}
			head := BlockedHead{
				Endpoint: ep,
				VN:       vn,
				Msg:      s.msgNames[m.Name],
				Addr:     int(m.Addr),
				State:    stateName,
			}
			stalledNames[head.Msg] = true
			for _, behind := range q[1:] {
				head.QueuedBehind = append(head.QueuedBehind, QueuedMsg{
					Msg:  s.msgNames[behind.Name],
					Addr: int(behind.Addr),
					Src:  int(behind.Src),
					Req:  int(behind.Req),
				})
				queuedNames[s.msgNames[behind.Name]] = true
			}
			ex.Blocked = append(ex.Blocked, head)
		}
	}

	// Transient controllers with nothing deliverable: starved waiters.
	for c := 0; c < s.cfg.Caches; c++ {
		for a := 0; a < s.cfg.Addrs; a++ {
			name := s.cacheStates[st.cache[c][a].state]
			if s.p.Cache.States[name].Transient {
				ex.PendingTransients = append(ex.PendingTransients,
					fmt.Sprintf("cache %d a%d in %s", c, a, name))
			}
		}
	}
	for a := range st.l2 {
		name := s.l2States[st.l2[a].state]
		if s.p.L2.States[name].Transient {
			ex.PendingTransients = append(ex.PendingTransients,
				fmt.Sprintf("l2(a%d) in %s", a, name))
		}
	}
	for a := 0; a < s.cfg.Addrs; a++ {
		name := s.dirStates[st.dir[a].state]
		if s.p.Dir.States[name].Transient {
			ex.PendingTransients = append(ex.PendingTransients,
				fmt.Sprintf("directory(a%d) in %s", a, name))
		}
	}

	for n := range stalledNames {
		if queuedNames[n] {
			ex.CycleHint = append(ex.CycleHint, n)
		}
	}
	sort.Strings(ex.CycleHint)
	return ex
}

// String renders the explanation as a short narrative.
func (e *Explanation) String() string {
	var b strings.Builder
	if len(e.Blocked) == 0 {
		b.WriteString("no stalled queue heads — the state is starved, not stalled\n")
	}
	for _, h := range e.Blocked {
		fmt.Fprintf(&b, "ep%d VN%d: %s (a%d) is stalled by state %s\n",
			h.Endpoint, h.VN, h.Msg, h.Addr, h.State)
		for _, q := range h.QueuedBehind {
			fmt.Fprintf(&b, "    %s (a%d, from ep%d) is queued behind it\n", q.Msg, q.Addr, q.Src)
		}
	}
	if len(e.PendingTransients) > 0 {
		fmt.Fprintf(&b, "waiting controllers: %s\n", strings.Join(e.PendingTransients, "; "))
	}
	if len(e.CycleHint) > 0 {
		fmt.Fprintf(&b, "same-name collision (Class 2 signature): %s both stalls and queues behind itself\n",
			strings.Join(e.CycleHint, ", "))
	}
	return b.String()
}

// SequenceChart renders a model-checking trace as an ASCII message
// sequence chart: one column per endpoint, one row per step that
// changed a controller state or moved a message. Rows show the rule's
// visible effect; long traces elide unchanged prefixes.
func (s *System) SequenceChart(trace [][]byte, maxRows int) string {
	if len(trace) == 0 {
		return ""
	}
	var b strings.Builder
	// Header.
	fmt.Fprintf(&b, "%-6s", "step")
	for ep := 0; ep < s.endpoints; ep++ {
		fmt.Fprintf(&b, " %-14s", s.epLabel(ep))
	}
	b.WriteString("\n")

	start := 0
	if maxRows > 0 && len(trace) > maxRows {
		start = len(trace) - maxRows
		fmt.Fprintf(&b, "… %d earlier steps elided …\n", start)
	}
	for i := start; i < len(trace); i++ {
		st := s.decode(trace[i])
		fmt.Fprintf(&b, "%-6d", i)
		for ep := 0; ep < s.endpoints; ep++ {
			cell := ""
			switch {
			case s.isCache(ep):
				var parts []string
				for a := 0; a < s.cfg.Addrs; a++ {
					parts = append(parts, s.cacheStates[st.cache[ep][a].state])
				}
				cell = strings.Join(parts, "/")
			case s.isL2(ep):
				var parts []string
				for a := 0; a < s.cfg.Addrs; a++ {
					if s.innerHome(a) == ep {
						parts = append(parts, s.l2States[st.l2[a].state])
					}
				}
				cell = strings.Join(parts, "/")
			default:
				var parts []string
				for a := 0; a < s.cfg.Addrs; a++ {
					if s.home(a) == ep {
						parts = append(parts, s.dirStates[st.dir[a].state])
					}
				}
				cell = strings.Join(parts, "/")
			}
			// Mark queue occupancy.
			pend := 0
			for vn := 0; vn < s.net.NumVNs; vn++ {
				pend += len(st.net.Local[ep][vn])
			}
			if pend > 0 {
				cell += fmt.Sprintf("(+%d)", pend)
			}
			fmt.Fprintf(&b, " %-14s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}
