package machine

import (
	"testing"

	"minvn/internal/mc"
	"minvn/internal/protocol"
	"minvn/internal/protocols"
	"minvn/internal/vnassign"
)

func benchSystem(b *testing.B, proto string, caches, dirs, addrs int, noSym bool) *System {
	b.Helper()
	p := protocols.MustLoad(proto)
	a := vnassign.Assign(p)
	vn, n := a.VN, a.NumVNs
	if vn == nil {
		vn, n = PerMessageVN(p)
	}
	sys, err := New(Config{
		Protocol: p, Caches: caches, Dirs: dirs, Addrs: addrs,
		VN: vn, NumVNs: n, GlobalCap: 2, LocalCap: 2, NoSymmetry: noSym,
	})
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkSuccessors measures raw rule-enumeration throughput on a
// mid-exploration state.
func BenchmarkSuccessors(b *testing.B) {
	sys := benchSystem(b, "MSI_nonblocking_cache", 3, 2, 2, false)
	sc := NewScenario(sys)
	if err := sc.Core(0, 0, protocol.Store); err != nil {
		b.Fatal(err)
	}
	if err := sc.Core(1, 1, protocol.Store); err != nil {
		b.Fatal(err)
	}
	st := sc.State()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Successors(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanonicalize measures the symmetry-reduction hook.
func BenchmarkCanonicalize(b *testing.B) {
	sys := benchSystem(b, "MSI_nonblocking_cache", 3, 2, 2, false)
	st := sys.Initial()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Canonicalize(st)
	}
}

// Ablation (DESIGN.md §5.3): DFS vs BFS for finding the Class 2
// deadlock of MSI-with-blocking-cache.
func BenchmarkDeadlockSearchStrategy(b *testing.B) {
	p := protocols.MustLoad("MSI_blocking_cache")
	vn, n := PerMessageVN(p)
	sys, err := New(Config{
		Protocol: p, Caches: 3, Dirs: 2, Addrs: 2,
		VN: vn, NumVNs: n, GlobalCap: 2, LocalCap: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	sc := NewScenario(sys)
	for i := 0; i < 2; i++ {
		if err := sc.Core(i, i, protocol.Store); err != nil {
			b.Fatal(err)
		}
		if err := sc.Handle(3+i, "GetM", i); err != nil {
			b.Fatal(err)
		}
		if err := sc.Handle(i, "Data", i); err != nil {
			b.Fatal(err)
		}
	}
	seed := sc.State()
	for _, strat := range []mc.Strategy{mc.DFS, mc.BFS} {
		b.Run(strat.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mc.Check(&Seeded{System: sys, Seeds: [][]byte{seed}},
					mc.Options{Strategy: strat, MaxStates: 400_000, DisableTraces: true})
				// BFS may exhaust its budget before the deep deadlock;
				// report what happened instead of failing.
				if res.Outcome == mc.Deadlock {
					b.ReportMetric(1, "found")
				} else {
					b.ReportMetric(0, "found")
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// Ablation (DESIGN.md §5.4): symmetry reduction on vs off.
func BenchmarkSymmetryReduction(b *testing.B) {
	for _, mode := range []struct {
		name  string
		noSym bool
	}{{"on", false}, {"off", true}} {
		sys := benchSystem(b, "MSI_nonblocking_cache", 2, 1, 1, mode.noSym)
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mc.Check(sys, mc.Options{MaxStates: 2_000_000, DisableTraces: true})
				if res.Outcome != mc.Complete {
					b.Fatalf("unexpected outcome %v", res)
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// Ablation (DESIGN.md §5.5): ICN buffer capacity sweep — the Class 2
// deadlock manifests already at the smallest capacities.
func BenchmarkBufferCapacitySweep(b *testing.B) {
	p := protocols.MustLoad("MSI_blocking_cache")
	vn, n := PerMessageVN(p)
	for _, cap := range []int{1, 2, 3} {
		sys, err := New(Config{
			Protocol: p, Caches: 3, Dirs: 2, Addrs: 2,
			VN: vn, NumVNs: n, GlobalCap: cap, LocalCap: cap,
		})
		if err != nil {
			b.Fatal(err)
		}
		sc := NewScenario(sys)
		for i := 0; i < 2; i++ {
			if err := sc.Core(i, i, protocol.Store); err != nil {
				b.Fatal(err)
			}
			if err := sc.Handle(3+i, "GetM", i); err != nil {
				b.Fatal(err)
			}
			if err := sc.Handle(i, "Data", i); err != nil {
				b.Fatal(err)
			}
		}
		seed := sc.State()
		b.Run("cap"+string(rune('0'+cap)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := mc.Check(&Seeded{System: sys, Seeds: [][]byte{seed}},
					mc.Options{Strategy: mc.DFS, MaxStates: 600_000, DisableTraces: true})
				if res.Outcome != mc.Deadlock && cap >= 2 {
					b.Fatalf("cap %d: %v", cap, res)
				}
				b.ReportMetric(float64(res.States), "states")
			}
		})
	}
}

// BenchmarkEncodeDecode measures the state codec.
func BenchmarkEncodeDecode(b *testing.B) {
	sys := benchSystem(b, "CHI", 3, 2, 2, false)
	st := sys.Initial()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := sys.decode(st)
		if enc := sys.encode(dec); len(enc) != len(st) {
			b.Fatal("codec mismatch")
		}
	}
}
