package machine

import (
	"fmt"
	"strings"
)

// The System implements mc.Model over its encoded states.

// Initial returns the single initial state: every controller in its
// initial stable state, the network empty.
func (s *System) Initial() [][]byte {
	return [][]byte{s.encode(s.newState())}
}

// Successors enumerates all successor states. Self-loop transitions
// (e.g. a load hit, which changes nothing) are filtered out, matching
// Murphi's deadlock semantics: a state whose only enabled rules map it
// to itself is deadlocked.
func (s *System) Successors(raw []byte) ([][]byte, error) {
	st := s.decode(raw)
	if err := s.checkInvariants(st); err != nil {
		return nil, err
	}
	var out [][]byte
	err := s.rules(st, func(_ Rule, next *state) {
		enc := s.encode(next)
		if string(enc) != string(raw) {
			out = append(out, enc)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SuccessorsNamed implements the model checker's optional NamedModel
// extension: identical to Successors, plus a rule label per successor
// so telemetry can attribute transitions to the guarded rule family
// that fired. Labels aggregate the rule's enumeration parameters
// (plan, endpoint ids) into the protocol-level identity that matters
// for the paper's per-rule fire counts: the processor event for core
// rules, the virtual network for deliveries, and the consumed message
// name for processing rules.
func (s *System) SuccessorsNamed(raw []byte) ([][]byte, []string, error) {
	st := s.decode(raw)
	if err := s.checkInvariants(st); err != nil {
		return nil, nil, err
	}
	var out [][]byte
	var labels []string
	err := s.rules(st, func(r Rule, next *state) {
		enc := s.encode(next)
		if string(enc) != string(raw) {
			out = append(out, enc)
			labels = append(labels, s.ruleLabel(st, r))
		}
	})
	if err != nil {
		return nil, nil, err
	}
	return out, labels, nil
}

// ruleLabel names a rule for telemetry attribution.
func (s *System) ruleLabel(st *state, r Rule) string {
	switch r.Kind {
	case RuleCore:
		return "core/" + string(r.Core)
	case RuleDeliver:
		return fmt.Sprintf("deliver/vn%d", r.VN)
	default:
		if m, ok := st.net.Head(r.Endpoint, r.PVN); ok {
			return "process/" + s.msgNames[m.Name]
		}
		return "process/?"
	}
}

// EnabledRules lists the enabled rules of a state, for the scenario
// driver and diagnostics.
func (s *System) EnabledRules(raw []byte) ([]Rule, error) {
	st := s.decode(raw)
	var out []Rule
	err := s.rules(st, func(r Rule, _ *state) {
		out = append(out, r)
	})
	return out, err
}

// Apply fires one rule on an encoded state.
func (s *System) Apply(raw []byte, r Rule) ([]byte, error) {
	st := s.decode(raw)
	var next *state
	var err error
	switch r.Kind {
	case RuleCore:
		next, err = s.applyCore(st, r)
	case RuleDeliver:
		next, err = s.applyDeliver(st, r)
	default:
		next, err = s.applyProcess(st, r)
	}
	if err != nil {
		return nil, err
	}
	return s.encode(next), nil
}

// Quiescent: every controller stable and the network drained.
func (s *System) Quiescent(raw []byte) bool {
	st := s.decode(raw)
	for c := range st.cache {
		for a := range st.cache[c] {
			if s.p.Cache.States[s.cacheStates[st.cache[c][a].state]].Transient {
				return false
			}
		}
	}
	for a := range st.l2 {
		if s.p.L2.States[s.l2States[st.l2[a].state]].Transient {
			return false
		}
	}
	for a := range st.dir {
		if s.p.Dir.States[s.dirStates[st.dir[a].state]].Transient {
			return false
		}
	}
	return st.net.Empty()
}

// Describe renders a state for counterexample traces.
func (s *System) Describe(raw []byte) string {
	st := s.decode(raw)
	var b strings.Builder
	for c := range st.cache {
		fmt.Fprintf(&b, "  cache %d:", c)
		for a := range st.cache[c] {
			e := st.cache[c][a]
			fmt.Fprintf(&b, "  a%d=%s", a, s.cacheStates[e.state])
			if e.acks != 0 {
				fmt.Fprintf(&b, "(acks=%d)", e.acks)
			}
			if e.saved != 0 {
				fmt.Fprintf(&b, "(saved=ep%d", e.saved-1)
				if e.savedAcks != 0 {
					fmt.Fprintf(&b, " acks=%d", e.savedAcks)
				}
				b.WriteByte(')')
			}
		}
		b.WriteByte('\n')
	}
	for a := range st.l2 {
		e := st.l2[a]
		fmt.Fprintf(&b, "  l2(a%d) ep%d: %s", a, s.innerHome(a), s.l2States[e.state])
		if e.owner != 0 {
			fmt.Fprintf(&b, " owner=ep%d", e.owner-1)
		}
		if e.sharers != 0 {
			fmt.Fprintf(&b, " sharers=")
			for c := 0; c < 8; c++ {
				if e.sharers&(1<<uint(c)) != 0 {
					fmt.Fprintf(&b, "c%d", c)
				}
			}
		}
		if e.acks != 0 {
			fmt.Fprintf(&b, " acks=%d", e.acks)
		}
		if e.cacheAcks != 0 {
			fmt.Fprintf(&b, " outer-acks=%d", e.cacheAcks)
		}
		b.WriteByte('\n')
	}
	for a := range st.dir {
		e := st.dir[a]
		fmt.Fprintf(&b, "  dir(a%d) ep%d: %s", a, s.home(a), s.dirStates[e.state])
		if e.owner != 0 {
			fmt.Fprintf(&b, " owner=ep%d", e.owner-1)
		}
		if e.sharers != 0 {
			fmt.Fprintf(&b, " sharers=")
			for c := 0; c < 8; c++ {
				if e.sharers&(1<<uint(c)) != 0 {
					fmt.Fprintf(&b, "c%d", c)
				}
			}
		}
		if e.acks != 0 {
			fmt.Fprintf(&b, " acks=%d", e.acks)
		}
		b.WriteByte('\n')
	}
	if net := st.net.Format(s.msgNames); net != "" {
		b.WriteString(net)
	}
	return b.String()
}

// Seeded wraps a System to start exploration from given states
// instead of the reset state — e.g. from a scenario-built prefix such
// as the Fig. 3 setup, which makes deep deadlock hunts cheap while
// remaining sound (every seed is itself reachable).
type Seeded struct {
	*System
	Seeds [][]byte
}

// Initial returns the seed states.
func (s *Seeded) Initial() [][]byte { return s.Seeds }

// CacheState returns cache c's state name for addr in an encoded
// state (test helper).
func (s *System) CacheState(raw []byte, c, addr int) string {
	st := s.decode(raw)
	return s.cacheStates[st.cache[c][addr].state]
}

// DirState returns the home directory state name for addr.
func (s *System) DirState(raw []byte, addr int) string {
	st := s.decode(raw)
	return s.dirStates[st.dir[addr].state]
}

// L2State returns the L2 home state name for addr (two-level systems).
func (s *System) L2State(raw []byte, addr int) string {
	st := s.decode(raw)
	return s.l2States[st.l2[addr].state]
}

// InFlight counts in-flight messages in an encoded state.
func (s *System) InFlight(raw []byte) int {
	return s.decode(raw).net.InFlight()
}
