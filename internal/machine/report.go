package machine

import (
	"fmt"
	"sort"
	"strings"

	"minvn/internal/relation"
)

// Deadlock reporting: tie the paper's static waits/queues relations to
// one concrete wedged state. Explain (explain.go) narrates which queue
// heads are stalled; DeadlockReport goes further and produces the
// machine-readable picture the vnexplain CLI renders — every in-flight
// message annotated with its VN and queue position, the active
// blocking edges among the message names present, and the cycle that
// closes the deadlock (the dynamic instance of an Eq. 4 witness).

// InFlightMsg is one message occupying a queue of the wedged state.
type InFlightMsg struct {
	Msg  string `json:"msg"`
	VN   int    `json:"vn"`
	Addr int    `json:"addr"`
	Src  int    `json:"src"`
	// Queue names the FIFO holding the message: "C1.vn3" for cache 1's
	// VN-3 input FIFO, "D0.vn2" for a directory's, "vn3.g0" for a
	// global buffer. Pos is the position in that FIFO (0 = head).
	Queue string `json:"queue"`
	Pos   int    `json:"pos"`
	// Stalled marks the head of an input FIFO whose delivery the
	// receiving controller stalls.
	Stalled bool `json:"stalled"`
}

// ReportEdge is one active blocking edge, in blocked-on direction:
// From cannot make progress until To does.
type ReportEdge struct {
	// Kind is "waits" (From's transaction awaits a To, Eq. 3) or
	// "queues" (From is queued behind a stalled To in the same FIFO).
	Kind string `json:"kind"`
	From string `json:"from"`
	To   string `json:"to"`
	// Where names the concrete FIFO for queues edges.
	Where string `json:"where,omitempty"`
}

// DeadlockReport is the full annotation of a wedged state.
type DeadlockReport struct {
	Blocked  []BlockedHead `json:"blocked"`
	Messages []InFlightMsg `json:"messages"`
	Edges    []ReportEdge  `json:"edges"`
	// Cycle is a blocking cycle over the active edges, in edge order
	// (the last element is blocked on the first; a single element is a
	// self-loop), or nil when the state is starved rather than
	// cyclically blocked.
	Cycle []string `json:"cycle,omitempty"`
	// VN maps every message name appearing above to its virtual
	// network under the run's assignment.
	VN map[string]int `json:"vn"`
}

// epLabel names an endpoint the way SequenceChart does: C<n> for
// caches, L<n> for L2 homes, D<n> for directories.
func (s *System) epLabel(ep int) string {
	switch {
	case s.isCache(ep):
		return fmt.Sprintf("C%d", ep)
	case s.isL2(ep):
		return fmt.Sprintf("L%d", ep-s.cfg.Caches)
	default:
		return fmt.Sprintf("D%d", ep-s.cfg.Caches-s.cfg.L2s)
	}
}

// DeadlockReport analyzes an encoded (wedged) state against the
// protocol's static waits relation (analysis.Result.Waits). The report
// is deterministic: messages are listed queue by queue, edges sorted.
func (s *System) DeadlockReport(raw []byte, waits *relation.Relation) *DeadlockReport {
	st := s.decode(raw)
	ex := s.Explain(raw)
	rep := &DeadlockReport{Blocked: ex.Blocked, VN: map[string]int{}}

	// Stalled heads by (endpoint, VN), for annotating the message list.
	stalledAt := map[[2]int]bool{}
	stalledNames := map[string]bool{}
	for _, h := range ex.Blocked {
		stalledAt[[2]int{h.Endpoint, h.VN}] = true
		stalledNames[h.Msg] = true
	}

	present := map[string]bool{}
	note := func(m InFlightMsg) {
		rep.Messages = append(rep.Messages, m)
		present[m.Msg] = true
		rep.VN[m.Msg] = m.VN
	}
	for ep := 0; ep < s.endpoints; ep++ {
		for vn := 0; vn < s.net.NumVNs; vn++ {
			q := st.net.Local[ep][vn]
			queue := fmt.Sprintf("%s.vn%d", s.epLabel(ep), vn)
			for pos, m := range q {
				note(InFlightMsg{
					Msg: s.msgNames[m.Name], VN: vn,
					Addr: int(m.Addr), Src: int(m.Src),
					Queue: queue, Pos: pos,
					Stalled: pos == 0 && stalledAt[[2]int{ep, vn}],
				})
			}
		}
	}
	for vn := 0; vn < s.net.NumVNs; vn++ {
		for b := 0; b < 2; b++ {
			queue := fmt.Sprintf("vn%d.g%d", vn, b)
			for pos, m := range st.net.Global[vn][b] {
				note(InFlightMsg{
					Msg: s.msgNames[m.Name], VN: vn,
					Addr: int(m.Addr), Src: int(m.Src),
					Queue: queue, Pos: pos,
				})
			}
		}
	}

	// Active edges. Queues edges come from the concrete FIFO contents:
	// anything behind a stalled head is blocked on that head. Waits
	// edges are the static relation restricted to the live conflict —
	// a stalled name on the left, a name present in the state on the
	// right (the awaited message classes that cannot be produced or
	// consumed while the cycle stands).
	active := relation.New()
	for _, h := range ex.Blocked {
		queue := fmt.Sprintf("%s.vn%d", s.epLabel(h.Endpoint), h.VN)
		for _, qm := range h.QueuedBehind {
			rep.Edges = append(rep.Edges, ReportEdge{
				Kind: "queues", From: qm.Msg, To: h.Msg, Where: queue,
			})
			active.Add(qm.Msg, h.Msg)
		}
	}
	for from := range stalledNames {
		for _, to := range waits.Image(from) {
			if !present[to] && !stalledNames[to] {
				continue
			}
			rep.Edges = append(rep.Edges, ReportEdge{Kind: "waits", From: from, To: to})
			active.Add(from, to)
		}
	}
	sort.Slice(rep.Edges, func(i, j int) bool {
		a, b := rep.Edges[i], rep.Edges[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind // "queues" before "waits"
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Where < b.Where
	})

	rep.Cycle = active.CycleWitness()
	return rep
}

// Positions lists where a message name sits in the wedged state, in
// report order — the queue annotations the narrative prints.
func (r *DeadlockReport) Positions(msg string) []InFlightMsg {
	var out []InFlightMsg
	for _, m := range r.Messages {
		if m.Msg == msg {
			out = append(out, m)
		}
	}
	return out
}

// String renders the report as the vnexplain narrative.
func (r *DeadlockReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "in-flight messages (%d):\n", len(r.Messages))
	for _, m := range r.Messages {
		mark := ""
		if m.Stalled {
			mark = "  << stalled head"
		}
		fmt.Fprintf(&b, "  %-12s VN%d  %s[%d]  a%d from ep%d%s\n",
			m.Msg, m.VN, m.Queue, m.Pos, m.Addr, m.Src, mark)
	}
	if len(r.Edges) > 0 {
		b.WriteString("active blocking edges:\n")
		for _, e := range r.Edges {
			where := ""
			if e.Where != "" {
				where = " in " + e.Where
			}
			fmt.Fprintf(&b, "  %s --%s--> %s%s\n", e.From, e.Kind, e.To, where)
		}
	}
	if len(r.Cycle) > 0 {
		parts := make([]string, 0, len(r.Cycle)+1)
		for _, m := range r.Cycle {
			parts = append(parts, fmt.Sprintf("%s (VN%d)", m, r.VN[m]))
		}
		parts = append(parts, parts[0]) // close the loop visually
		fmt.Fprintf(&b, "blocking cycle: %s\n", strings.Join(parts, " -> "))
		for _, m := range dedupStrings(r.Cycle) {
			var locs []string
			for _, p := range r.Positions(m) {
				locs = append(locs, fmt.Sprintf("%s[%d]", p.Queue, p.Pos))
			}
			fmt.Fprintf(&b, "  %s occupies %s\n", m, strings.Join(locs, ", "))
		}
	} else {
		b.WriteString("no blocking cycle among in-flight messages (starvation, not a queue cycle)\n")
	}
	return b.String()
}

// DOT renders the active blocking graph in Graphviz dot form: one node
// per message name (labeled with its VN), queues edges dashed and
// labeled with their FIFO, cycle participants in red.
func (r *DeadlockReport) DOT() string {
	onCycle := map[string]bool{}
	for _, m := range r.Cycle {
		onCycle[m] = true
	}
	cycleEdge := map[[2]string]bool{}
	for i := range r.Cycle {
		cycleEdge[[2]string{r.Cycle[i], r.Cycle[(i+1)%len(r.Cycle)]}] = true
	}

	names := map[string]bool{}
	for _, e := range r.Edges {
		names[e.From], names[e.To] = true, true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	var b strings.Builder
	b.WriteString("digraph deadlock {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box];\n")
	for _, n := range sorted {
		attrs := fmt.Sprintf("label=\"%s\\nVN%d\"", n, r.VN[n])
		if onCycle[n] {
			attrs += ", color=red, fontcolor=red"
		}
		fmt.Fprintf(&b, "  %q [%s];\n", n, attrs)
	}
	for _, e := range r.Edges {
		var attrs []string
		if e.Kind == "queues" {
			attrs = append(attrs, "style=dashed")
		}
		label := e.Kind
		if e.Where != "" {
			label += " " + e.Where
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		if cycleEdge[[2]string{e.From, e.To}] {
			attrs = append(attrs, "color=red", "fontcolor=red")
		}
		fmt.Fprintf(&b, "  %q -> %q [%s];\n", e.From, e.To, strings.Join(attrs, ", "))
	}
	b.WriteString("}\n")
	return b.String()
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
