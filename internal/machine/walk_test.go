package machine

import (
	"testing"

	"minvn/internal/protocols"
	"minvn/internal/vnassign"
)

// TestWalkClass3NeverWedges: long random walks over the verified
// protocols with invariants enabled never deadlock or violate.
func TestWalkClass3NeverWedges(t *testing.T) {
	for _, proto := range []string{
		"MSI_nonblocking_cache", "MESIF_nonblocking_cache", "CHI", "MSI_completion",
	} {
		p := protocols.MustLoad(proto)
		a := vnassign.Assign(p)
		sys, err := New(Config{
			Protocol: p, Caches: 3, Dirs: 2, Addrs: 2,
			VN: a.VN, NumVNs: a.NumVNs, Invariants: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 8; seed++ {
			res := sys.Walk(seed, 3000)
			if res.Violation != nil || res.Deadlocked {
				t.Fatalf("%s seed %d: %v", proto, seed, res)
			}
			if res.Steps < 3000 && !res.Quiesced {
				t.Fatalf("%s seed %d: walk ended early: %v", proto, seed, res)
			}
			if res.RuleMix[RuleProcess] == 0 {
				t.Fatalf("%s seed %d: workload never processed a message", proto, seed)
			}
		}
	}
}

// TestWalkDeterministic: the same seed replays the same walk.
func TestWalkDeterministic(t *testing.T) {
	p := protocols.MustLoad("MSI_nonblocking_cache")
	a := vnassign.Assign(p)
	sys, err := New(Config{
		Protocol: p, Caches: 2, Dirs: 1, Addrs: 1, VN: a.VN, NumVNs: a.NumVNs,
	})
	if err != nil {
		t.Fatal(err)
	}
	r1 := sys.Walk(42, 500)
	r2 := sys.Walk(42, 500)
	if string(r1.Final) != string(r2.Final) || r1.Steps != r2.Steps {
		t.Fatal("walk not deterministic")
	}
	r3 := sys.Walk(43, 500)
	if string(r1.Final) == string(r3.Final) {
		t.Log("different seeds reached the same state (possible but unusual)")
	}
}

// TestWalkFindsClass2Deadlock: random walks from the ownership prefix
// stumble into the Class 2 deadlock within a modest budget for at
// least one seed (a probabilistic smoke test of the walk-as-probe
// idea; the exhaustive checker remains the authority).
func TestWalkFindsClass2Deadlock(t *testing.T) {
	p := protocols.MustLoad("MSI_blocking_cache")
	vn, n := PerMessageVN(p)
	sys, err := New(Config{
		Protocol: p, Caches: 3, Dirs: 2, Addrs: 2, VN: vn, NumVNs: n,
		GlobalCap: 2, LocalCap: 2, // tight buffers funnel walks toward the wedge
	})
	if err != nil {
		t.Fatal(err)
	}
	seed := ownershipSeed(t, sys, 3, 2)
	found := false
	for s := int64(0); s < 30 && !found; s++ {
		res := sys.WalkFrom(seed, s, 4000)
		if res.Violation != nil {
			t.Fatalf("seed %d: unexpected violation: %v", s, res.Violation)
		}
		found = res.Deadlocked
	}
	if !found {
		t.Skip("no walk wedged within budget (probabilistic); exhaustive tests cover the claim")
	}
}
