package machine

import (
	"sync"
	"testing"

	"minvn/internal/protocols"
)

// referenceCanonicalize is the naive allocating form: the minimum of
// encode(applyPerm(st, p)) over all cache permutations.
func referenceCanonicalize(s *System, raw []byte) []byte {
	if len(s.perms) <= 1 {
		return raw
	}
	st := s.decode(raw)
	best := raw
	for _, perm := range s.perms[1:] {
		cand := s.encode(s.applyPerm(st, perm))
		if string(cand) < string(best) {
			best = cand
		}
	}
	return best
}

func canonSystem(t *testing.T) *System {
	t.Helper()
	p := protocols.MustLoad("MSI_nonblocking_cache")
	vn, n := PerMessageVN(p)
	sys, err := New(Config{Protocol: p, Caches: 3, Dirs: 2, Addrs: 2, VN: vn, NumVNs: n})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCanonicalizeMatchesReference pins the pooled scratch
// canonicalizer against the reference implementation on a spread of
// reachable states, and checks idempotence.
func TestCanonicalizeMatchesReference(t *testing.T) {
	sys := canonSystem(t)
	states := walkStates(sys, 400)
	for i, raw := range states {
		got := sys.Canonicalize(raw)
		want := referenceCanonicalize(sys, raw)
		if string(got) != string(want) {
			t.Fatalf("state %d: canonical forms diverge\n got  %x\n want %x", i, got, want)
		}
		if again := sys.Canonicalize(got); string(again) != string(got) {
			t.Fatalf("state %d: canonicalization not idempotent", i)
		}
	}
}

// TestCanonicalizeConcurrent exercises the scratch pool from many
// goroutines (meaningful under -race).
func TestCanonicalizeConcurrent(t *testing.T) {
	sys := canonSystem(t)
	states := walkStates(sys, 100)
	want := make([][]byte, len(states))
	for i, raw := range states {
		want[i] = sys.Canonicalize(raw)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, raw := range states {
				if got := sys.Canonicalize(raw); string(got) != string(want[i]) {
					t.Errorf("state %d: concurrent canonicalization diverged", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// walkStates collects distinct states along random walks, giving the
// canonicalizer non-trivial network contents to chew on.
func walkStates(sys *System, n int) [][]byte {
	seen := map[string]bool{}
	var out [][]byte
	for seed := int64(0); len(out) < n && seed < 50; seed++ {
		cur := sys.Initial()[0]
		for step := 0; step < 40 && len(out) < n; step++ {
			if !seen[string(cur)] {
				seen[string(cur)] = true
				out = append(out, cur)
			}
			succs, err := sys.Successors(cur)
			if err != nil || len(succs) == 0 {
				break
			}
			cur = succs[int(seed+int64(step*7))%len(succs)]
		}
	}
	return out
}
