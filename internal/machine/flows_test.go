package machine

import (
	"testing"

	"minvn/internal/protocol"
)

// Transaction walkthroughs per protocol family: drive the canonical
// flows of each table through the scenario driver and check the
// resulting stable states. These validate the transcriptions
// transition by transition, complementing the exhaustive model checks.

type flow struct {
	desc string
	f    func(sc *Scenario) error
}

func runFlow(t *testing.T, sys *System, flows []flow) *Scenario {
	t.Helper()
	sc := NewScenario(sys)
	for _, fl := range flows {
		if err := fl.f(sc); err != nil {
			t.Fatalf("%s: %v\nlog:\n%s", fl.desc, err, sc.FormatLog())
		}
	}
	return sc
}

// TestMESIExclusiveGrantAndSilentUpgrade: a lone reader gets E; its
// store upgrades silently; a second reader makes the owner supply data
// and both settle in S.
func TestMESIExclusiveGrantAndSilentUpgrade(t *testing.T) {
	sys := newSys(t, "MESI_nonblocking_cache", 2, 1, 1, "permsg")
	dir := 2
	sc := runFlow(t, sys, []flow{
		{"C0 loads", func(s *Scenario) error { return s.Core(0, 0, protocol.Load) }},
		{"dir grants exclusive", func(s *Scenario) error { return s.Handle(dir, "GetS", 0) }},
		{"C0 takes Data-E", func(s *Scenario) error { return s.Handle(0, "Data-E", 0) }},
	})
	if got := sys.CacheState(sc.State(), 0, 0); got != "E" {
		t.Fatalf("cache 0 in %s, want E", got)
	}
	if got := sys.DirState(sc.State(), 0); got != "EorM" {
		t.Fatalf("dir in %s, want EorM", got)
	}

	// Silent E→M upgrade.
	if err := sc.Core(0, 0, protocol.Store); err != nil {
		t.Fatal(err)
	}
	if got := sys.CacheState(sc.State(), 0, 0); got != "M" {
		t.Fatalf("cache 0 in %s after store, want M", got)
	}

	// Second reader: dir forwards, owner supplies data to both reader
	// and directory.
	for _, fl := range []flow{
		{"C1 loads", func(s *Scenario) error { return s.Core(1, 0, protocol.Load) }},
		{"dir forwards to owner", func(s *Scenario) error { return s.Handle(dir, "GetS", 0) }},
		{"owner serves Fwd-GetS", func(s *Scenario) error { return s.Handle(0, "Fwd-GetS", 0) }},
		{"C1 takes data", func(s *Scenario) error { return s.Handle(1, "Data", 0) }},
		{"dir takes data", func(s *Scenario) error { return s.Handle(dir, "Data", 0) }},
	} {
		if err := fl.f(sc); err != nil {
			t.Fatalf("%s: %v\nlog:\n%s", fl.desc, err, sc.FormatLog())
		}
	}
	for c := 0; c < 2; c++ {
		if got := sys.CacheState(sc.State(), c, 0); got != "S" {
			t.Fatalf("cache %d in %s, want S", c, got)
		}
	}
	if got := sys.DirState(sc.State(), 0); got != "S" {
		t.Fatalf("dir in %s, want S", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("not quiescent:\n%s", sc.Describe())
	}
}

// TestMOSIOwnerServesReader: the defining MOSI behaviour — a GetS to a
// modified block leaves the dirty data with the owner (M→O) and the
// directory never blocks.
func TestMOSIOwnerServesReader(t *testing.T) {
	sys := newSys(t, "MOSI_nonblocking_cache", 2, 1, 1, "permsg")
	dir := 2
	sc := runFlow(t, sys, []flow{
		{"C0 stores", func(s *Scenario) error { return s.Core(0, 0, protocol.Store) }},
		{"dir grants M", func(s *Scenario) error { return s.Handle(dir, "GetM", 0) }},
		{"C0 takes data", func(s *Scenario) error { return s.Handle(0, "Data", 0) }},
		{"C1 loads", func(s *Scenario) error { return s.Core(1, 0, protocol.Load) }},
		{"dir forwards (stays unblocked)", func(s *Scenario) error { return s.Handle(dir, "GetS", 0) }},
		{"owner serves from M", func(s *Scenario) error { return s.Handle(0, "Fwd-GetS", 0) }},
		{"C1 takes data", func(s *Scenario) error { return s.Handle(1, "Data", 0) }},
	})
	if got := sys.CacheState(sc.State(), 0, 0); got != "O" {
		t.Fatalf("owner in %s, want O", got)
	}
	if got := sys.CacheState(sc.State(), 1, 0); got != "S" {
		t.Fatalf("reader in %s, want S", got)
	}
	if got := sys.DirState(sc.State(), 0); got != "O" {
		t.Fatalf("dir in %s, want O", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("not quiescent:\n%s", sc.Describe())
	}
}

// TestMOSIOwnerUpgrade: O + store goes through AckCount + Inv-Acks.
func TestMOSIOwnerUpgrade(t *testing.T) {
	sys := newSys(t, "MOSI_nonblocking_cache", 2, 1, 1, "permsg")
	dir := 2
	sc := runFlow(t, sys, []flow{
		// Build O(owner C0) + sharer C1.
		{"C0 stores", func(s *Scenario) error { return s.Core(0, 0, protocol.Store) }},
		{"dir grants M", func(s *Scenario) error { return s.Handle(dir, "GetM", 0) }},
		{"C0 takes data", func(s *Scenario) error { return s.Handle(0, "Data", 0) }},
		{"C1 loads", func(s *Scenario) error { return s.Core(1, 0, protocol.Load) }},
		{"dir forwards", func(s *Scenario) error { return s.Handle(dir, "GetS", 0) }},
		{"owner serves", func(s *Scenario) error { return s.Handle(0, "Fwd-GetS", 0) }},
		{"C1 takes data", func(s *Scenario) error { return s.Handle(1, "Data", 0) }},
		// Owner upgrades: AckCount carries 1, C1 gets Inv.
		{"owner stores again", func(s *Scenario) error { return s.Core(0, 0, protocol.Store) }},
		{"dir counts acks + invalidates", func(s *Scenario) error { return s.Handle(dir, "Upgrade", 0) }},
		{"C1 invalidates", func(s *Scenario) error { return s.Handle(1, "Inv", 0) }},
		{"owner takes AckCount", func(s *Scenario) error { return s.Handle(0, "AckCount", 0) }},
		{"owner takes Inv-Ack", func(s *Scenario) error { return s.Handle(0, "Inv-Ack", 0) }},
	})
	if got := sys.CacheState(sc.State(), 0, 0); got != "M" {
		t.Fatalf("owner in %s, want M\n%s", got, sc.Describe())
	}
	if got := sys.CacheState(sc.State(), 1, 0); got != "I" {
		t.Fatalf("sharer in %s, want I", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("not quiescent:\n%s", sc.Describe())
	}
}

// TestCHICompletionFlow: every CHI transaction parks the home in a
// busy state until CompAck.
func TestCHICompletionFlow(t *testing.T) {
	sys := newSys(t, "CHI", 2, 1, 1, "permsg")
	home := 2
	sc := NewScenario(sys)
	if err := sc.Core(0, 0, protocol.Load); err != nil {
		t.Fatal(err)
	}
	if err := sc.Handle(home, "ReadShared", 0); err != nil {
		t.Fatal(err)
	}
	// The home must now be blocked waiting for CompAck.
	if got := sys.DirState(sc.State(), 0); got != "BusyUAck" {
		t.Fatalf("home in %s, want BusyUAck (exclusive read grant)", got)
	}
	if err := sc.Handle(0, "CompData_UC", 0); err != nil {
		t.Fatal(err)
	}
	if err := sc.Handle(home, "CompAck", 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.DirState(sc.State(), 0); got != "UNIQ" {
		t.Fatalf("home in %s, want UNIQ", got)
	}
	if got := sys.CacheState(sc.State(), 0, 0); got != "UC" {
		t.Fatalf("cache in %s, want UC", got)
	}

	// CleanUnique upgrade by the other cache, which is Invalid: the
	// paper's Fig. 5 I→UCE full-write flow.
	steps := []flow{
		{"C1 stores from I", func(s *Scenario) error { return s.Core(1, 0, protocol.Store) }},
		{"home snoops owner", func(s *Scenario) error { return s.Handle(home, "ReadUnique", 0) }},
		{"owner yields data", func(s *Scenario) error { return s.Handle(0, "SnpUnique", 0) }},
		{"home collects + grants", func(s *Scenario) error { return s.Handle(home, "SnpRespData", 0) }},
		{"C1 completes", func(s *Scenario) error { return s.Handle(1, "CompData", 0) }},
		{"home retires on CompAck", func(s *Scenario) error { return s.Handle(home, "CompAck", 0) }},
	}
	for _, st := range steps {
		if err := st.f(sc); err != nil {
			t.Fatalf("%s: %v\n%s", st.desc, err, sc.Describe())
		}
	}
	if got := sys.CacheState(sc.State(), 1, 0); got != "UD" {
		t.Fatalf("writer in %s, want UD", got)
	}
	if got := sys.CacheState(sc.State(), 0, 0); got != "I" {
		t.Fatalf("old owner in %s, want I", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("not quiescent:\n%s", sc.Describe())
	}
}

// TestCHIHomeBlocksConcurrentRequest: the "directory always blocks"
// property in action — a second request stalls at the home until the
// first transaction's CompAck.
func TestCHIHomeBlocksConcurrentRequest(t *testing.T) {
	sys := newSys(t, "CHI", 2, 1, 1, "permsg")
	home := 2
	sc := NewScenario(sys)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(sc.Core(0, 0, protocol.Load))
	must(sc.Handle(home, "ReadShared", 0))
	// Second request arrives while the home is busy.
	must(sc.Core(1, 0, protocol.Load))
	must(sc.DeliverTo("ReadShared", 0, home))
	if stalled := sc.StalledHeads(); len(stalled) != 1 {
		t.Fatalf("expected the second ReadShared stalled at the home, got %v", stalled)
	}
	// Completing the first transaction unblocks it.
	must(sc.Handle(0, "CompData_UC", 0))
	must(sc.Handle(home, "CompAck", 0))
	must(sc.Process(home, "ReadShared", 0))
	if got := sys.DirState(sc.State(), 0); got == "UNIQ" {
		t.Fatalf("home still UNIQ after processing second read")
	}
}

// TestMSIPutAckWaitRace drives the eviction race the Put-AckWait
// handshake exists for: the directory acks a non-owner PutM, the
// evictor keeps the data and serves the owed forward from MIW_A.
func TestMSIPutAckWaitRace(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 2, 1, 1, "permsg")
	dir := 2
	sc := NewScenario(sys)
	must := func(err error) {
		if err != nil {
			t.Fatalf("%v\nlog:\n%s\nstate:\n%s", err, sc.FormatLog(), sc.Describe())
		}
	}
	// C0 owns the block, starts evicting.
	must(sc.Core(0, 0, protocol.Store))
	must(sc.Handle(dir, "GetM", 0))
	must(sc.Handle(0, "Data", 0))
	must(sc.Core(0, 0, protocol.Replacement))
	// C1's write is ordered first at the directory: Fwd-GetM heads to
	// C0 (but stays in flight).
	must(sc.Core(1, 0, protocol.Store))
	must(sc.Handle(dir, "GetM", 0))
	// The PutM now reaches the directory as a non-owner: Put-AckWait.
	must(sc.Handle(dir, "PutM", 0))
	must(sc.Handle(0, "Put-AckWait", 0))
	if got := sys.CacheState(sc.State(), 0, 0); got != "MIW_A" {
		t.Fatalf("evictor in %s, want MIW_A", got)
	}
	// The owed forward arrives; the evictor serves it and retires.
	must(sc.Handle(0, "Fwd-GetM", 0))
	if got := sys.CacheState(sc.State(), 0, 0); got != "I" {
		t.Fatalf("evictor in %s, want I", got)
	}
	must(sc.Handle(1, "Data", 0))
	if got := sys.CacheState(sc.State(), 1, 0); got != "M" {
		t.Fatalf("writer in %s, want M", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("not quiescent:\n%s", sc.Describe())
	}
}

// TestMESIFForwardChain: the F designation hops from reader to reader
// with the home blocking only for the receipt handshake, and the
// F-holder (not memory) supplies the data.
func TestMESIFForwardChain(t *testing.T) {
	sys := newSys(t, "MESIF_nonblocking_cache", 3, 1, 1, "permsg")
	dir := 3
	sc := NewScenario(sys)
	must := func(desc string, err error) {
		if err != nil {
			t.Fatalf("%s: %v\nlog:\n%s\nstate:\n%s", desc, err, sc.FormatLog(), sc.Describe())
		}
	}

	// C0 reads an idle block: exclusive grant.
	must("C0 loads", sc.Core(0, 0, protocol.Load))
	must("home grants E", sc.Handle(dir, "GetS", 0))
	must("C0 takes Data-E", sc.Handle(0, "Data-E", 0))
	if got := sys.CacheState(sc.State(), 0, 0); got != "E" {
		t.Fatalf("C0 in %s, want E", got)
	}

	// C1 reads: the exclusive owner downgrades, C1 becomes the
	// F-holder, the home collects the (clean) write-back in F_D.
	must("C1 loads", sc.Core(1, 0, protocol.Load))
	must("home forwards to owner", sc.Handle(dir, "GetS", 0))
	must("owner serves", sc.Handle(0, "Fwd-GetS", 0))
	must("C1 takes Data-FX", sc.Handle(1, "Data-FX", 0))
	must("home takes write-back", sc.Handle(dir, "Data", 0))
	if got := sys.CacheState(sc.State(), 1, 0); got != "F" {
		t.Fatalf("C1 in %s, want F", got)
	}
	if got := sys.DirState(sc.State(), 0); got != "F" {
		t.Fatalf("home in %s, want F", got)
	}

	// C2 reads: the F-holder answers and the designation hops to C2
	// once the receipt confirmation lands.
	must("C2 loads", sc.Core(2, 0, protocol.Load))
	must("home forwards along the F chain", sc.Handle(dir, "GetS", 0))
	must("holder serves Data-F", sc.Handle(1, "Fwd-GetSF", 0))
	must("C2 takes Data-F", sc.Handle(2, "Data-F", 0))
	must("home unblocks on FwdDone", sc.Handle(dir, "FwdDone", 0))
	if got := sys.CacheState(sc.State(), 2, 0); got != "F" {
		t.Fatalf("C2 in %s, want F", got)
	}
	if got := sys.CacheState(sc.State(), 1, 0); got != "S" {
		t.Fatalf("C1 in %s, want S", got)
	}
	if got := sys.DirState(sc.State(), 0); got != "F" {
		t.Fatalf("home in %s, want F", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("not quiescent:\n%s", sc.Describe())
	}
}

// TestTileLinkAcquireProbeGrant: the five-channel transaction shape —
// Acquire, Probe, ProbeAckData, Grant, GrantAck.
func TestTileLinkAcquireProbeGrant(t *testing.T) {
	sys := newSys(t, "TileLink", 2, 1, 1, "permsg")
	home := 2
	sc := NewScenario(sys)
	must := func(desc string, err error) {
		if err != nil {
			t.Fatalf("%s: %v\nstate:\n%s", desc, err, sc.Describe())
		}
	}
	must("C0 acquires tip", sc.Core(0, 0, protocol.Store))
	must("home grants", sc.Handle(home, "AcquireUnique", 0))
	must("C0 takes grant", sc.Handle(0, "GrantUnique", 0))
	must("home retires on GrantAck", sc.Handle(home, "GrantAck", 0))
	if got := sys.DirState(sc.State(), 0); got != "Tip" {
		t.Fatalf("home in %s, want Tip", got)
	}

	must("C1 acquires shared", sc.Core(1, 0, protocol.Load))
	must("home probes the tip", sc.Handle(home, "AcquireShared", 0))
	must("tip yields data", sc.Handle(0, "ProbeShared", 0))
	must("home grants from probe data", sc.Handle(home, "ProbeAckData", 0))
	must("C1 takes grant", sc.Handle(1, "GrantShared", 0))
	must("home retires", sc.Handle(home, "GrantAck", 0))
	if got := sys.CacheState(sc.State(), 0, 0); got != "B" {
		t.Fatalf("old tip in %s, want B", got)
	}
	if got := sys.CacheState(sc.State(), 1, 0); got != "B" {
		t.Fatalf("reader in %s, want B", got)
	}
	if got := sys.DirState(sc.State(), 0); got != "Branches" {
		t.Fatalf("home in %s, want Branches", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("not quiescent:\n%s", sc.Describe())
	}
}
