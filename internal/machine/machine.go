// Package machine gives a protocol specification executable semantics:
// a system of N cache controllers and D directories over A addresses
// (address a is homed at directory a mod D), communicating through the
// paper's ICN model (package icn) under a concrete message→VN
// assignment. It exposes the guarded-rule transition system the model
// checker explores (paper §VII-A) and a deterministic scenario driver
// for replaying specific executions such as the Fig. 3 deadlock.
package machine

import (
	"fmt"
	"sort"
	"sync"

	"minvn/internal/icn"
	"minvn/internal/protocol"
)

// Config describes one system instance. The paper's verification uses
// 3 caches, 2 addresses, and 2 directories (§VII-A.2).
type Config struct {
	Protocol *protocol.Protocol
	Caches   int
	Dirs     int
	Addrs    int
	// L2s is the number of L2 home nodes for a two-level composite
	// protocol (Protocol.L2 != nil); it must be 0 for flat protocols.
	// Address a is homed at L2 a mod L2s on the inner tier and at
	// directory a mod Dirs on the outer tier. Endpoint ids run caches,
	// then L2 homes, then directories. Caches+L2s must stay ≤ 8 (the
	// sharer bitmasks are bytes of absolute endpoint ids).
	L2s int
	// VN maps message names to virtual networks; NumVNs must exceed
	// every value. Helpers in this package build common assignments.
	VN     map[string]int
	NumVNs int
	// Buffer capacities. When zero they default to the paper's
	// sizing (footnote 5: the model suffices for protocols limiting
	// in-flight messages per source/destination pair to two):
	// GlobalCap = 2·E·(E−1), LocalCap = 2·(E−1) for E endpoints —
	// large enough that sends and deliveries never block, so every
	// reported deadlock is a genuine protocol/VN deadlock rather
	// than buffer backpressure. Smaller explicit values model
	// capacity-constrained networks (the capacity-sweep ablation).
	GlobalCap int
	LocalCap  int
	// PointToPoint selects ordered mode with the given mapping
	// variant (see icn.UniformP2P).
	PointToPoint bool
	P2PVariant   int
	// NoSymmetry disables the cache-permutation symmetry reduction.
	NoSymmetry bool
	// CoreEvents restricts the processor events the model checker
	// injects (nil = all of Load, Store, Replacement). Restricting
	// the workload is standard verification practice for focusing a
	// search; the Table I deadlock hunts for MOSI/MOESI use
	// {Load, Store}.
	CoreEvents []protocol.CoreEvent
	// Invariants enables SWMR and bookkeeping checks on every
	// explored state (see invariants.go).
	Invariants bool
	// Permissions overrides the stable-state permission table used by
	// the SWMR check, for protocols with novel state names.
	Permissions map[string]Permission
}

// System is an executable instance; build with New.
type System struct {
	cfg Config
	p   *protocol.Protocol

	msgNames []string
	msgIdx   map[string]uint8
	msgs     []*protocol.Message
	vnOf     []int

	cacheStates   []string
	cacheStateIdx map[string]uint8
	dirStates     []string
	dirStateIdx   map[string]uint8
	l2States      []string
	l2StateIdx    map[string]uint8

	endpoints int
	net       icn.Config
	perms     [][]int // cache permutations for symmetry reduction
	// canonPool recycles the canonicalizer's scratch states and
	// buffers across (possibly concurrent) Canonicalize calls.
	canonPool sync.Pool
}

// New validates cfg and builds a system.
func New(cfg Config) (*System, error) {
	if cfg.Protocol == nil {
		return nil, fmt.Errorf("machine: no protocol")
	}
	if cfg.Caches < 1 || cfg.Caches > 8 {
		return nil, fmt.Errorf("machine: caches must be in 1..8, got %d", cfg.Caches)
	}
	if cfg.Dirs < 1 || cfg.Addrs < 1 {
		return nil, fmt.Errorf("machine: need at least one directory and address")
	}
	if cfg.Addrs < cfg.Dirs {
		return nil, fmt.Errorf("machine: fewer addresses (%d) than directories (%d) leaves idle directories", cfg.Addrs, cfg.Dirs)
	}
	if cfg.Protocol.TwoLevel() != (cfg.L2s > 0) {
		if cfg.Protocol.TwoLevel() {
			return nil, fmt.Errorf("machine: two-level protocol %q needs L2s >= 1", cfg.Protocol.Name)
		}
		return nil, fmt.Errorf("machine: L2s set but protocol %q has no L2 controller", cfg.Protocol.Name)
	}
	if cfg.L2s > 0 {
		if cfg.Caches+cfg.L2s > 8 {
			return nil, fmt.Errorf("machine: caches+L2s (%d) beyond the sharer-bitmask limit of 8", cfg.Caches+cfg.L2s)
		}
		if cfg.Addrs < cfg.L2s {
			return nil, fmt.Errorf("machine: fewer addresses (%d) than L2 homes (%d) leaves idle homes", cfg.Addrs, cfg.L2s)
		}
		if cfg.Invariants {
			return nil, fmt.Errorf("machine: invariant checking is not supported for two-level protocols")
		}
	}
	endpoints := cfg.Caches + cfg.L2s + cfg.Dirs
	if cfg.GlobalCap == 0 {
		cfg.GlobalCap = 2 * endpoints * (endpoints - 1)
	}
	if cfg.LocalCap == 0 {
		cfg.LocalCap = 2 * (endpoints - 1)
	}
	if cfg.GlobalCap > 250 || cfg.LocalCap > 250 {
		return nil, fmt.Errorf("machine: buffer capacities beyond the byte-encoded limit (250)")
	}
	if cfg.NumVNs < 1 {
		return nil, fmt.Errorf("machine: NumVNs must be positive, got %d", cfg.NumVNs)
	}

	s := &System{
		cfg:           cfg,
		p:             cfg.Protocol,
		msgIdx:        make(map[string]uint8),
		cacheStateIdx: make(map[string]uint8),
		dirStateIdx:   make(map[string]uint8),
		endpoints:     endpoints,
	}
	for _, name := range s.p.MessageNames() {
		s.msgIdx[name] = uint8(len(s.msgNames))
		s.msgNames = append(s.msgNames, name)
		s.msgs = append(s.msgs, s.p.Messages[name])
		vn, ok := cfg.VN[name]
		if !ok {
			return nil, fmt.Errorf("machine: message %q has no VN assignment", name)
		}
		if vn < 0 || vn >= cfg.NumVNs {
			return nil, fmt.Errorf("machine: message %q assigned VN %d outside [0,%d)", name, vn, cfg.NumVNs)
		}
		s.vnOf = append(s.vnOf, vn)
	}
	for _, st := range s.p.Cache.StateNames() {
		s.cacheStateIdx[st] = uint8(len(s.cacheStates))
		s.cacheStates = append(s.cacheStates, st)
	}
	for _, st := range s.p.Dir.StateNames() {
		s.dirStateIdx[st] = uint8(len(s.dirStates))
		s.dirStates = append(s.dirStates, st)
	}
	if s.p.L2 != nil {
		s.l2StateIdx = make(map[string]uint8)
		for _, st := range s.p.L2.StateNames() {
			s.l2StateIdx[st] = uint8(len(s.l2States))
			s.l2States = append(s.l2States, st)
		}
	}

	s.net = icn.Config{
		NumVNs:       cfg.NumVNs,
		Endpoints:    s.endpoints,
		GlobalCap:    cfg.GlobalCap,
		LocalCap:     cfg.LocalCap,
		PointToPoint: cfg.PointToPoint,
	}
	if cfg.PointToPoint {
		s.net.P2P = icn.UniformP2P(s.endpoints, cfg.P2PVariant)
	}
	if err := s.net.Validate(); err != nil {
		return nil, err
	}

	if !cfg.NoSymmetry {
		s.perms = permutations(cfg.Caches)
	}
	s.canonPool.New = func() any { return &canonScratch{} }
	return s, nil
}

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// home returns the endpoint id of the directory owning addr — the one
// and only home in a flat system, the outer home in a two-level one.
func (s *System) home(addr int) int { return s.cfg.Caches + s.cfg.L2s + addr%s.cfg.Dirs }

// innerHome returns the home the caches send inner requests to: the L2
// home of addr in a two-level system, the directory otherwise.
func (s *System) innerHome(addr int) int {
	if s.cfg.L2s > 0 {
		return s.cfg.Caches + addr%s.cfg.L2s
	}
	return s.home(addr)
}

// isCache reports whether endpoint e is an L1 cache.
func (s *System) isCache(e int) bool { return e < s.cfg.Caches }

// isL2 reports whether endpoint e is an L2 home.
func (s *System) isL2(e int) bool {
	return e >= s.cfg.Caches && e < s.cfg.Caches+s.cfg.L2s
}

// cacheEntry is one cache's per-address state.
type cacheEntry struct {
	state     uint8
	acks      int8
	saved     uint8 // 0 = none, else cache/endpoint id + 1
	savedAcks int8
}

// dirEntry is the home directory's per-address state. In a two-level
// system the owner and sharers reference L2 endpoint ids.
type dirEntry struct {
	state   uint8
	owner   uint8 // 0 = none, else endpoint id + 1
	sharers uint8 // bitmask over client endpoint ids
	acks    int8
}

// l2Entry is the L2 home's per-address state in a two-level system: a
// directory book over the inner caches plus a cache-side ack counter
// for its own outer transactions.
type l2Entry struct {
	state     uint8
	owner     uint8 // inner owner: 0 = none, else cache id + 1
	sharers   uint8 // inner sharers: bitmask over cache ids
	acks      int8  // inner directory ack counter
	cacheAcks int8  // outer (cache-role) ack counter
}

// state is the decoded system state. l2 is nil for flat systems.
type state struct {
	cache [][]cacheEntry // [cache][addr]
	l2    []l2Entry      // [addr]
	dir   []dirEntry     // [addr]
	net   *icn.State
}

func (s *System) newState() *state {
	st := &state{
		cache: make([][]cacheEntry, s.cfg.Caches),
		dir:   make([]dirEntry, s.cfg.Addrs),
		net:   icn.NewState(s.net),
	}
	ci := s.cacheStateIdx[s.p.Cache.Initial]
	di := s.dirStateIdx[s.p.Dir.Initial]
	for c := range st.cache {
		st.cache[c] = make([]cacheEntry, s.cfg.Addrs)
		for a := range st.cache[c] {
			st.cache[c][a].state = ci
		}
	}
	for a := range st.dir {
		st.dir[a].state = di
	}
	if s.cfg.L2s > 0 {
		st.l2 = make([]l2Entry, s.cfg.Addrs)
		li := s.l2StateIdx[s.p.L2.Initial]
		for a := range st.l2 {
			st.l2[a].state = li
		}
	}
	return st
}

func (st *state) clone() *state {
	c := &state{
		cache: make([][]cacheEntry, len(st.cache)),
		dir:   append([]dirEntry(nil), st.dir...),
		net:   st.net.Clone(),
	}
	if st.l2 != nil {
		c.l2 = append([]l2Entry(nil), st.l2...)
	}
	for i := range st.cache {
		c.cache[i] = append([]cacheEntry(nil), st.cache[i]...)
	}
	return c
}

func int8b(v int8) byte { return byte(uint8(v) + 128) }
func bInt8(b byte) int8 { return int8(b - 128) }

// encode produces the deterministic byte form used for deduplication
// and trace storage.
func (s *System) encode(st *state) []byte {
	size := len(st.cache)*s.cfg.Addrs*4 + s.cfg.Addrs*4 + len(st.l2)*5
	return s.appendEncode(make([]byte, 0, size+64), st)
}

// appendEncode appends st's encoding to out, reusing out's capacity —
// the allocation-free form the canonicalizer and the parallel engines
// lean on when scoring many candidate encodings per successor.
func (s *System) appendEncode(out []byte, st *state) []byte {
	for _, row := range st.cache {
		for _, e := range row {
			out = append(out, e.state, int8b(e.acks), e.saved, int8b(e.savedAcks))
		}
	}
	// The l2 section is only present in two-level systems, so flat
	// encodings are byte-identical to the historical format.
	for _, e := range st.l2 {
		out = append(out, e.state, e.owner, e.sharers, int8b(e.acks), int8b(e.cacheAcks))
	}
	for _, e := range st.dir {
		out = append(out, e.state, e.owner, e.sharers, int8b(e.acks))
	}
	return st.net.Encode(out)
}

// decode is the inverse of encode. It only ever sees bytes produced by
// encode (model-checker states feed back into Successors), so a decode
// failure is a programming bug, not an input condition — it panics with
// the codec error rather than returning one through every caller.
func (s *System) decode(raw []byte) *state {
	st := &state{
		cache: make([][]cacheEntry, s.cfg.Caches),
		dir:   make([]dirEntry, s.cfg.Addrs),
	}
	i := 0
	minSize := (s.cfg.Caches + 1) * s.cfg.Addrs * 4
	if s.cfg.L2s > 0 {
		minSize += s.cfg.Addrs * 5
	}
	if len(raw) < minSize {
		panic(fmt.Sprintf("machine: state truncated: %d bytes for %d controllers",
			len(raw), s.cfg.Caches+1))
	}
	for c := 0; c < s.cfg.Caches; c++ {
		st.cache[c] = make([]cacheEntry, s.cfg.Addrs)
		for a := 0; a < s.cfg.Addrs; a++ {
			st.cache[c][a] = cacheEntry{raw[i], bInt8(raw[i+1]), raw[i+2], bInt8(raw[i+3])}
			i += 4
		}
	}
	if s.cfg.L2s > 0 {
		st.l2 = make([]l2Entry, s.cfg.Addrs)
		for a := 0; a < s.cfg.Addrs; a++ {
			st.l2[a] = l2Entry{raw[i], raw[i+1], raw[i+2], bInt8(raw[i+3]), bInt8(raw[i+4])}
			i += 5
		}
	}
	for a := 0; a < s.cfg.Addrs; a++ {
		st.dir[a] = dirEntry{raw[i], raw[i+1], raw[i+2], bInt8(raw[i+3])}
		i += 4
	}
	net, rest, err := icn.Decode(s.net, raw[i:])
	if err != nil {
		panic(fmt.Sprintf("machine: corrupt network state: %v", err))
	}
	if len(rest) != 0 {
		panic(fmt.Sprintf("machine: %d trailing bytes after network state", len(rest)))
	}
	st.net = net
	return st
}

// permutations returns all permutations of 0..n-1.
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}

// permuteEndpoint maps endpoint id e under cache permutation perm
// (L2 homes and directories are fixed points).
func permuteEndpoint(perm []int, e uint8) uint8 {
	if int(e) < len(perm) {
		return uint8(perm[e])
	}
	return e
}

// permuteMask relabels a sharer bitmask of endpoint ids under perm.
// Bits at or beyond len(perm) (L2 homes, directories) stay in place.
func permuteMask(perm []int, mask uint8) uint8 {
	var out uint8
	for b := 0; b < 8; b++ {
		if mask&(1<<uint(b)) != 0 {
			out |= 1 << uint(permuteEndpoint(perm, uint8(b)))
		}
	}
	return out
}

// Canonicalize lives in canon.go (pooled, allocation-free scratch);
// applyPerm below is its allocating reference implementation, kept for
// the equivalence tests that pin the two against each other.

func (s *System) applyPerm(st *state, perm []int) *state {
	out := st.clone()
	for c := range st.cache {
		out.cache[perm[c]] = append([]cacheEntry(nil), st.cache[c]...)
	}
	for c := range out.cache {
		for a := range out.cache[c] {
			e := &out.cache[c][a]
			if e.saved != 0 {
				e.saved = permuteEndpoint(perm, e.saved-1) + 1
			}
		}
	}
	for a := range out.l2 {
		e := &out.l2[a]
		if e.owner != 0 {
			e.owner = permuteEndpoint(perm, e.owner-1) + 1
		}
		e.sharers = permuteMask(perm, e.sharers)
	}
	for a := range out.dir {
		e := &out.dir[a]
		if e.owner != 0 {
			e.owner = permuteEndpoint(perm, e.owner-1) + 1
		}
		e.sharers = permuteMask(perm, e.sharers)
	}
	permMsg := func(m icn.Message) icn.Message {
		m.Src = permuteEndpoint(perm, m.Src)
		m.Req = permuteEndpoint(perm, m.Req)
		m.Dst = permuteEndpoint(perm, m.Dst)
		return m
	}
	for vn := range out.net.Global {
		for b := 0; b < 2; b++ {
			q := out.net.Global[vn][b]
			for i := range q {
				q[i] = permMsg(q[i])
			}
		}
	}
	// Local FIFOs move with their endpoints: cache c's queues become
	// cache perm[c]'s queues.
	local := make([][][]icn.Message, len(out.net.Local))
	copy(local, out.net.Local)
	for c := 0; c < s.cfg.Caches; c++ {
		local[perm[c]] = out.net.Local[c]
	}
	out.net.Local = local
	for e := range out.net.Local {
		for vn := range out.net.Local[e] {
			q := out.net.Local[e][vn]
			for i := range q {
				q[i] = permMsg(q[i])
			}
		}
	}
	return out
}

// UniformVN assigns every message to VN 0.
func UniformVN(p *protocol.Protocol) (map[string]int, int) {
	vn := make(map[string]int, len(p.Messages))
	for _, m := range p.MessageNames() {
		vn[m] = 0
	}
	return vn, 1
}

// PerMessageVN assigns every message its own VN (used for Class 1 /
// Class 2 checking, §V).
func PerMessageVN(p *protocol.Protocol) (map[string]int, int) {
	vn := make(map[string]int, len(p.Messages))
	for i, m := range p.MessageNames() {
		vn[m] = i
	}
	return vn, len(vn)
}

// TypeVN assigns one VN per message type present in the protocol —
// the textbook assignment (requests / forwarded / responses share by
// type, data and control responses together when merge is set).
func TypeVN(p *protocol.Protocol, mergeResponses bool) (map[string]int, int) {
	classOf := func(t protocol.MsgType) int {
		if mergeResponses && t == protocol.CtrlResponse {
			return int(protocol.DataResponse)
		}
		return int(t)
	}
	used := map[int]int{}
	vn := make(map[string]int, len(p.Messages))
	for _, m := range p.MessageNames() {
		c := classOf(p.Messages[m].Type)
		if _, ok := used[c]; !ok {
			used[c] = len(used)
		}
		vn[m] = used[c]
	}
	return vn, len(used)
}

// sharersIn lists the endpoint ids in mask within [lo,hi) excluding
// req, ascending.
func sharersIn(mask uint8, req uint8, lo, hi int) []int {
	var out []int
	for c := lo; c < hi; c++ {
		if mask&(1<<uint(c)) != 0 && uint8(c) != req {
			out = append(out, c)
		}
	}
	return out
}

func countSharersIn(mask uint8, req uint8, lo, hi int) int {
	n := 0
	for c := lo; c < hi; c++ {
		if mask&(1<<uint(c)) != 0 && uint8(c) != req {
			n++
		}
	}
	return n
}

// sharersExcept lists the cache ids in mask excluding req, ascending.
func sharersExcept(mask uint8, req uint8, caches int) []int {
	return sharersIn(mask, req, 0, caches)
}

func countSharersExcept(mask uint8, req uint8, caches int) int {
	return countSharersIn(mask, req, 0, caches)
}

// sortedKeys is a tiny helper for deterministic map iteration.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
