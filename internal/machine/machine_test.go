package machine

import (
	"testing"

	"minvn/internal/protocol"
	"minvn/internal/protocols"
)

func newSys(t *testing.T, proto string, caches, dirs, addrs int, vnMode string) *System {
	t.Helper()
	p := protocols.MustLoad(proto)
	var vn map[string]int
	var n int
	switch vnMode {
	case "uniform":
		vn, n = UniformVN(p)
	case "permsg":
		vn, n = PerMessageVN(p)
	case "type":
		vn, n = TypeVN(p, true)
	default:
		t.Fatalf("unknown vn mode %q", vnMode)
	}
	sys, err := New(Config{
		Protocol: p, Caches: caches, Dirs: dirs, Addrs: addrs,
		VN: vn, NumVNs: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestReadTransaction drives GetS → Data → S end to end.
func TestReadTransaction(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 2, 1, 1, "permsg")
	sc := NewScenario(sys)
	dir := 2 // endpoint id of the only directory

	if err := sc.Core(0, 0, protocol.Load); err != nil {
		t.Fatal(err)
	}
	if got := sys.CacheState(sc.State(), 0, 0); got != "IS_D" {
		t.Fatalf("cache 0 in %s, want IS_D", got)
	}
	if err := sc.Handle(dir, "GetS", 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.DirState(sc.State(), 0); got != "S" {
		t.Fatalf("dir in %s, want S", got)
	}
	if err := sc.Handle(0, "Data", 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.CacheState(sc.State(), 0, 0); got != "S" {
		t.Fatalf("cache 0 in %s, want S", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("expected quiescent state:\n%s", sc.Describe())
	}
}

// TestWriteWithInvalidation drives the three-hop write: C0 takes S,
// C1 writes, C0 is invalidated, the Inv-Ack completes C1's store.
func TestWriteWithInvalidation(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 2, 1, 1, "permsg")
	sc := NewScenario(sys)
	dir := 2

	steps := []func() error{
		func() error { return sc.Core(0, 0, protocol.Load) },
		func() error { return sc.Handle(dir, "GetS", 0) },
		func() error { return sc.Handle(0, "Data", 0) },
		func() error { return sc.Core(1, 0, protocol.Store) },
		func() error { return sc.Handle(dir, "GetM", 0) },
		func() error { return sc.Handle(0, "Inv", 0) },
		func() error { return sc.Handle(1, "Data", 0) },
		func() error { return sc.Handle(1, "Inv-Ack", 0) },
	}
	for i, s := range steps {
		if err := s(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if got := sys.CacheState(sc.State(), 1, 0); got != "M" {
		t.Fatalf("cache 1 in %s, want M\n%s", got, sc.Describe())
	}
	if got := sys.CacheState(sc.State(), 0, 0); got != "I" {
		t.Fatalf("cache 0 in %s, want I", got)
	}
	if !sys.Quiescent(sc.State()) {
		t.Fatalf("expected quiescent state:\n%s", sc.Describe())
	}
}

// TestEviction drives M → PutM → Put-Ack → I.
func TestEviction(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 2, 1, 1, "permsg")
	sc := NewScenario(sys)
	dir := 2

	steps := []func() error{
		func() error { return sc.Core(0, 0, protocol.Store) },
		func() error { return sc.Handle(dir, "GetM", 0) },
		func() error { return sc.Handle(0, "Data", 0) },
		func() error { return sc.Core(0, 0, protocol.Replacement) },
		func() error { return sc.Handle(dir, "PutM", 0) },
		func() error { return sc.Handle(0, "Put-Ack", 0) },
	}
	for i, s := range steps {
		if err := s(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if got := sys.CacheState(sc.State(), 0, 0); got != "I" {
		t.Fatalf("cache 0 in %s, want I", got)
	}
	if got := sys.DirState(sc.State(), 0); got != "I" {
		t.Fatalf("dir in %s, want I", got)
	}
}

// TestFig3Deadlock replays the paper's Fig. 3 execution: three caches,
// two directories, two addresses, MSI with a blocking cache, every
// message on its own VN — and the system still wedges, the Class 2
// signature.
func TestFig3Deadlock(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 3, 2, 2, "permsg")
	sc := NewScenario(sys)
	const (
		dirX = 3 // home of address 0 ("X")
		dirY = 4 // home of address 1 ("Y")
		X    = 0
		Y    = 1
	)

	steps := []struct {
		desc string
		f    func() error
	}{
		// Setup: C0 owns X in M, C1 owns Y in M.
		{"C0 stores X", func() error { return sc.Core(0, X, protocol.Store) }},
		{"dirX handles GetM", func() error { return sc.Handle(dirX, "GetM", X) }},
		{"C0 gets data", func() error { return sc.Handle(0, "Data", X) }},
		{"C1 stores Y", func() error { return sc.Core(1, Y, protocol.Store) }},
		{"dirY handles GetM", func() error { return sc.Handle(dirY, "GetM", Y) }},
		{"C1 gets data", func() error { return sc.Handle(1, "Data", Y) }},

		// Time 1: C0 requests Y, C1 requests X; the directories
		// forward to the current owners. These first-generation
		// forwards ride global buffer 0 and are "delayed until time
		// 4" (Fig. 3).
		{"C0 stores Y", func() error { return sc.Core(0, Y, protocol.Store) }},
		{"dirY handles C0.GetM", func() error { return sc.HandleVia(dirY, "GetM", Y, 0) }},
		{"C1 stores X", func() error { return sc.Core(1, X, protocol.Store) }},
		{"dirX handles C1.GetM", func() error { return sc.HandleVia(dirX, "GetM", X, 0) }},

		// Time 2: C2 requests both blocks; the new Fwd-GetMs go to
		// the *pending* owners C0 (for Y) and C1 (for X) through
		// global buffer 1, overtaking the first generation.
		{"C2 stores Y", func() error { return sc.Core(2, Y, protocol.Store) }},
		{"dirY handles C2.GetM", func() error { return sc.HandleVia(dirY, "GetM", Y, 1) }},
		{"C2 stores X", func() error { return sc.Core(2, X, protocol.Store) }},
		{"dirX handles C2.GetM", func() error { return sc.HandleVia(dirX, "GetM", X, 1) }},

		// Time 3: the second-generation forwards arrive first and
		// stall (C0 is in IM_AD for Y; C1 in IM_AD for X).
		{"Fwd-GetM(Y) reaches C0", func() error { return sc.DeliverTo("Fwd-GetM", Y, 0) }},
		{"Fwd-GetM(X) reaches C1", func() error { return sc.DeliverTo("Fwd-GetM", X, 1) }},

		// Time 4: the first-generation forwards queue behind them.
		{"Fwd-GetM(Y) queues at C1", func() error { return sc.DeliverTo("Fwd-GetM", Y, 1) }},
		{"Fwd-GetM(X) queues at C0", func() error { return sc.DeliverTo("Fwd-GetM", X, 0) }},
	}
	for _, s := range steps {
		if err := s.f(); err != nil {
			t.Fatalf("%s: %v", s.desc, err)
		}
	}

	stalled := sc.StalledHeads()
	if len(stalled) < 2 {
		t.Fatalf("expected both caches to be stalled, got %v\nstate:\n%s", stalled, sc.Describe())
	}
	stuck, err := sc.Stuck()
	if err != nil {
		t.Fatal(err)
	}
	if stuck {
		return // fully wedged already
	}
	// C2 can still issue core events on a fully saturated system; the
	// essential deadlock is the crosswise stall, which model checking
	// (TestMSIModelCheckDeadlock) confirms reaches a total deadlock.
	if len(stalled) != 2 {
		t.Fatalf("want exactly the two crosswise stalls, got %v", stalled)
	}
}

// TestCanonicalizeSymmetry: swapping two caches' roles must yield the
// same canonical state.
func TestCanonicalizeSymmetry(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 2, 1, 1, "uniform")

	run := func(cache int) []byte {
		sc := NewScenario(sys)
		if err := sc.Core(cache, 0, protocol.Store); err != nil {
			t.Fatal(err)
		}
		if err := sc.Handle(2, "GetM", 0); err != nil {
			t.Fatal(err)
		}
		if err := sc.Handle(cache, "Data", 0); err != nil {
			t.Fatal(err)
		}
		return sc.State()
	}
	a, b := run(0), run(1)
	if string(a) == string(b) {
		t.Fatal("states with different cache roles should differ before canonicalization")
	}
	if string(sys.Canonicalize(a)) != string(sys.Canonicalize(b)) {
		t.Fatal("canonical forms should coincide")
	}
}
