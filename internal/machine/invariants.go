package machine

import (
	"fmt"
	"strings"
)

// Coherence invariants in the style of Murphi models (paper §VII uses
// Murphi's built-in deadlock detection; industrial models additionally
// assert the Single-Writer-Multiple-Reader invariant). The machine
// checks them on every explored state when Config.Invariants is set.
//
// Because the checks are expressed over *stable* controller states,
// they hold in every protocol here: a cache only enters a write state
// after its transaction completes, and transient states make no
// read/write claims.

// Permission classifies what a stable cache state allows.
type Permission int

const (
	// PermNone: no access (I, or any transient state).
	PermNone Permission = iota
	// PermRead: read-only access (S-like states).
	PermRead
	// PermWrite: read/write access (M/E-like states).
	PermWrite
)

// writeStates and readStates classify the stable cache states of the
// built-in protocol families by name. Unknown stable states are
// treated as PermNone; protocols with novel state names can extend
// the table via Config.Permissions.
var defaultPermissions = map[string]Permission{
	// MOESIF-family names.
	"M": PermWrite, "E": PermWrite,
	"O": PermRead, "S": PermRead, "F": PermRead,
	"I": PermNone,
	// CHI names.
	"UD": PermWrite, "UC": PermWrite,
	"SC": PermRead, "SD": PermRead,
	// The custom VI example.
	"V": PermWrite,
}

// InvariantViolation describes a failed coherence check.
type InvariantViolation struct {
	Name   string
	Detail string
}

func (v *InvariantViolation) Error() string {
	return fmt.Sprintf("invariant %s violated: %s", v.Name, v.Detail)
}

// permissionOf returns the access a cache entry grants, using the
// configured override table first.
func (s *System) permissionOf(stateName string) Permission {
	if s.cfg.Permissions != nil {
		if p, ok := s.cfg.Permissions[stateName]; ok {
			return p
		}
	}
	if p, ok := defaultPermissions[stateName]; ok {
		return p
	}
	return PermNone
}

// checkInvariants validates a decoded state. It returns nil or an
// *InvariantViolation.
func (s *System) checkInvariants(st *state) error {
	if !s.cfg.Invariants {
		return nil
	}
	for a := 0; a < s.cfg.Addrs; a++ {
		writers, readers := 0, 0
		var holders []string
		for c := 0; c < s.cfg.Caches; c++ {
			name := s.cacheStates[st.cache[c][a].state]
			if s.p.Cache.States[name].Transient {
				continue
			}
			switch s.permissionOf(name) {
			case PermWrite:
				writers++
				holders = append(holders, fmt.Sprintf("c%d=%s", c, name))
			case PermRead:
				readers++
				holders = append(holders, fmt.Sprintf("c%d=%s", c, name))
			}
		}
		// SWMR: a writer excludes every other reader or writer.
		if writers > 1 || (writers == 1 && readers > 0) {
			return &InvariantViolation{
				Name: "SWMR",
				Detail: fmt.Sprintf("a%d held by %s (%d writers, %d readers)",
					a, strings.Join(holders, ", "), writers, readers),
			}
		}

		// Note: we deliberately do NOT assert that the recorded owner
		// holds permission. Protocols with unconfirmed ownership
		// grants (MESIF's Data-FX) legally pass through states where
		// the recorded owner has already dropped the line; the nack
		// machinery recovers, and asserting here would flag those
		// sound executions.
		de := st.dir[a]

		// Ack counters must never underflow below the worst case
		// (more acks received than sharers exist) or overflow.
		for c := 0; c < s.cfg.Caches; c++ {
			acks := int(st.cache[c][a].acks)
			if acks < -s.cfg.Caches || acks > s.cfg.Caches {
				return &InvariantViolation{
					Name:   "AckBounds",
					Detail: fmt.Sprintf("a%d cache %d ack counter %d out of [-%d,%d]", a, c, acks, s.cfg.Caches, s.cfg.Caches),
				}
			}
		}
		if acks := int(de.acks); acks < -s.cfg.Caches || acks > s.cfg.Caches {
			return &InvariantViolation{
				Name:   "AckBounds",
				Detail: fmt.Sprintf("a%d directory ack counter %d out of range", a, acks),
			}
		}
	}
	return nil
}
