package machine

import (
	"minvn/internal/icn"
)

// Canonicalization is the hottest operation in a symmetry-reduced
// search: every generated successor is re-encoded once per non-trivial
// cache permutation (5 for the paper's 3-cache config) to find the
// lexicographically smallest relabeling. The naive form — decode, then
// clone+encode per permutation — allocates a dozen objects per
// successor and dominated the checker's allocation profile. This file
// keeps a pooled scratch (two reusable decoded states and two byte
// buffers) per concurrent caller, so a Canonicalize call allocates at
// most once: the final copy of a winning non-identity encoding.

// canonScratch is the per-call reusable working set. It never escapes
// Canonicalize; the pool makes it safe under the parallel engines'
// concurrent Canonicalize calls.
type canonScratch struct {
	src  *state // decoded input
	tmp  *state // relabeled candidate, rebuilt per permutation
	buf  []byte // candidate encoding
	best []byte // best non-identity encoding so far
}

// Canonicalize implements symmetry reduction: among all relabelings of
// the (identical) caches, pick the lexicographically smallest
// encoding. Directories are distinguished by their address ranges and
// are not permuted. Equivalent to encoding applyPerm for every
// permutation (the reference the tests compare against) but
// allocation-free apart from the final copy.
func (s *System) Canonicalize(raw []byte) []byte {
	if len(s.perms) <= 1 {
		return raw
	}
	sc := s.canonPool.Get().(*canonScratch)
	if sc.src == nil {
		sc.src = s.newState()
		sc.tmp = s.newState()
	}
	s.decodeInto(sc.src, raw)
	best := raw
	changed := false
	for _, perm := range s.perms[1:] { // perms[0] is identity
		s.permuteInto(sc.tmp, sc.src, perm)
		sc.buf = s.appendEncode(sc.buf[:0], sc.tmp)
		if string(sc.buf) < string(best) {
			// The candidate buffer becomes the best; swap so the next
			// candidate doesn't overwrite it.
			sc.best, sc.buf = sc.buf, sc.best
			best = sc.best
			changed = true
		}
	}
	if changed {
		// best aliases pooled scratch; copy before releasing it.
		best = append([]byte(nil), best...)
	}
	s.canonPool.Put(sc)
	return best
}

// decodeInto is decode into a reusable scratch state (same panics on
// corrupt input; see decode).
func (s *System) decodeInto(st *state, raw []byte) {
	i := 0
	for c := 0; c < s.cfg.Caches; c++ {
		for a := 0; a < s.cfg.Addrs; a++ {
			st.cache[c][a] = cacheEntry{raw[i], bInt8(raw[i+1]), raw[i+2], bInt8(raw[i+3])}
			i += 4
		}
	}
	if s.cfg.L2s > 0 {
		for a := 0; a < s.cfg.Addrs; a++ {
			st.l2[a] = l2Entry{raw[i], raw[i+1], raw[i+2], bInt8(raw[i+3]), bInt8(raw[i+4])}
			i += 5
		}
	}
	for a := 0; a < s.cfg.Addrs; a++ {
		st.dir[a] = dirEntry{raw[i], raw[i+1], raw[i+2], bInt8(raw[i+3])}
		i += 4
	}
	rest, err := icn.DecodeInto(s.net, st.net, raw[i:])
	if err != nil {
		panic("machine: corrupt network state: " + err.Error())
	}
	if len(rest) != 0 {
		panic("machine: trailing bytes after network state")
	}
}

// permuteInto rewrites dst to be st relabeled under perm, reusing
// dst's storage. dst and st must not share storage. Semantics match
// applyPerm exactly.
func (s *System) permuteInto(dst, st *state, perm []int) {
	for c := range st.cache {
		copy(dst.cache[perm[c]], st.cache[c])
	}
	for c := range dst.cache {
		for a := range dst.cache[c] {
			e := &dst.cache[c][a]
			if e.saved != 0 {
				e.saved = permuteEndpoint(perm, e.saved-1) + 1
			}
		}
	}
	copy(dst.l2, st.l2)
	for a := range dst.l2 {
		e := &dst.l2[a]
		if e.owner != 0 {
			e.owner = permuteEndpoint(perm, e.owner-1) + 1
		}
		e.sharers = permuteMask(perm, e.sharers)
	}
	copy(dst.dir, st.dir)
	for a := range dst.dir {
		e := &dst.dir[a]
		if e.owner != 0 {
			e.owner = permuteEndpoint(perm, e.owner-1) + 1
		}
		e.sharers = permuteMask(perm, e.sharers)
	}
	permMsg := func(m icn.Message) icn.Message {
		m.Src = permuteEndpoint(perm, m.Src)
		m.Req = permuteEndpoint(perm, m.Req)
		m.Dst = permuteEndpoint(perm, m.Dst)
		return m
	}
	for vn := range st.net.Global {
		for b := 0; b < 2; b++ {
			q := append(dst.net.Global[vn][b][:0], st.net.Global[vn][b]...)
			for i := range q {
				q[i] = permMsg(q[i])
			}
			dst.net.Global[vn][b] = q
		}
	}
	// Local FIFOs move with their endpoints: cache c's queues become
	// cache perm[c]'s queues; directories are fixed points.
	for e := range st.net.Local {
		target := e
		if e < len(perm) {
			target = perm[e]
		}
		for vn := range st.net.Local[e] {
			q := append(dst.net.Local[target][vn][:0], st.net.Local[e][vn]...)
			for i := range q {
				q[i] = permMsg(q[i])
			}
			dst.net.Local[target][vn] = q
		}
	}
}
