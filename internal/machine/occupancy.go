package machine

import (
	"fmt"
	"sort"

	"minvn/internal/icn"
)

// OccupancyProfiler adapts icn.OccupancyProfiler to the model
// checker's state-observer hook: it slices the network portion out of
// an encoded system state and aggregates its per-VN queue depths. One
// profiler observes one run; feed it to mc.Options.Observer.
//
// Like System.decode, it only ever sees bytes the system itself
// encoded, so a malformed state is a programming bug and panics rather
// than returning an error through the checker's hot path.
type OccupancyProfiler struct {
	prof *icn.OccupancyProfiler
	// ctrlBytes is the length of the controller-entry prefix that
	// precedes the network encoding in every encoded state.
	ctrlBytes int
}

// NewOccupancyProfiler builds a profiler for this system's states,
// with each VN labeled by the message names assigned to it.
func (s *System) NewOccupancyProfiler() *OccupancyProfiler {
	p := &OccupancyProfiler{
		prof:      icn.NewOccupancyProfiler(s.net),
		ctrlBytes: (s.cfg.Caches + 1) * s.cfg.Addrs * 4,
	}
	byVN := make([][]string, s.cfg.NumVNs)
	for name, vn := range s.cfg.VN {
		byVN[vn] = append(byVN[vn], name)
	}
	for vn, names := range byVN {
		sort.Strings(names)
		p.prof.SetMessages(vn, names)
	}
	return p
}

// Observe implements mc.StateObserver for encoded system states.
func (p *OccupancyProfiler) Observe(state []byte) {
	if len(state) < p.ctrlBytes {
		panic(fmt.Sprintf("machine: occupancy observer: state truncated to %d bytes (controllers need %d)",
			len(state), p.ctrlBytes))
	}
	if err := p.prof.ObserveEncoded(state[p.ctrlBytes:]); err != nil {
		panic(fmt.Sprintf("machine: occupancy observer: corrupt network state: %v", err))
	}
}

// Summary implements the checker's optional summarizing-observer
// extension: the occupancy aggregate is embedded in every mc.Snapshot.
func (p *OccupancyProfiler) Summary() any { return p.prof.Stats() }

// Stats returns the typed aggregate for direct consumers (CLIs,
// parity tests).
func (p *OccupancyProfiler) Stats() *icn.OccupancyStats { return p.prof.Stats() }
