package machine

import (
	"strings"
	"testing"

	"minvn/internal/mc"
	"minvn/internal/protocol"
	"minvn/internal/protocols"
)

// TestExplainFig3Deadlock: the explanation of the Fig. 3 wedged state
// names the crosswise Fwd-GetM stalls and the Class 2 same-name
// collision.
func TestExplainFig3Deadlock(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 3, 2, 2, "permsg")
	state := buildFig3(t, sys)

	ex := sys.Explain(state)
	if len(ex.Blocked) != 2 {
		t.Fatalf("blocked heads = %d, want 2\n%s", len(ex.Blocked), ex)
	}
	for _, h := range ex.Blocked {
		if h.Msg != "Fwd-GetM" || h.State != "IM_AD" {
			t.Errorf("unexpected blocked head %+v", h)
		}
		if len(h.QueuedBehind) != 1 || h.QueuedBehind[0].Msg != "Fwd-GetM" {
			t.Errorf("expected a Fwd-GetM queued behind, got %+v", h.QueuedBehind)
		}
	}
	hint := strings.Join(ex.CycleHint, ",")
	if !strings.Contains(hint, "Fwd-GetM") {
		t.Errorf("cycle hint %q misses Fwd-GetM", hint)
	}
	if !strings.Contains(ex.String(), "stalled") {
		t.Error("narrative missing")
	}
}

// buildFig3 drives the scenario into the Fig. 3 wedged state.
func buildFig3(t *testing.T, sys *System) []byte {
	t.Helper()
	const dirX, dirY, X, Y = 3, 4, 0, 1
	sc := NewScenario(sys)
	steps := []func() error{
		func() error { return sc.Core(0, X, protocol.Store) },
		func() error { return sc.Handle(dirX, "GetM", X) },
		func() error { return sc.Handle(0, "Data", X) },
		func() error { return sc.Core(1, Y, protocol.Store) },
		func() error { return sc.Handle(dirY, "GetM", Y) },
		func() error { return sc.Handle(1, "Data", Y) },
		func() error { return sc.Core(0, Y, protocol.Store) },
		func() error { return sc.HandleVia(dirY, "GetM", Y, 0) },
		func() error { return sc.Core(1, X, protocol.Store) },
		func() error { return sc.HandleVia(dirX, "GetM", X, 0) },
		func() error { return sc.Core(2, Y, protocol.Store) },
		func() error { return sc.HandleVia(dirY, "GetM", Y, 1) },
		func() error { return sc.Core(2, X, protocol.Store) },
		func() error { return sc.HandleVia(dirX, "GetM", X, 1) },
		func() error { return sc.DeliverTo("Fwd-GetM", Y, 0) },
		func() error { return sc.DeliverTo("Fwd-GetM", X, 1) },
		func() error { return sc.DeliverTo("Fwd-GetM", Y, 1) },
		func() error { return sc.DeliverTo("Fwd-GetM", X, 0) },
	}
	for i, f := range steps {
		if err := f(); err != nil {
			t.Fatalf("fig3 step %d: %v", i, err)
		}
	}
	return sc.State()
}

// TestExplainCleanState: nothing blocked, no transients.
func TestExplainCleanState(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 2, 1, 1, "permsg")
	ex := sys.Explain(sys.Initial()[0])
	if len(ex.Blocked) != 0 || len(ex.PendingTransients) != 0 || len(ex.CycleHint) != 0 {
		t.Fatalf("initial state explanation not clean: %s", ex)
	}
}

// TestSequenceChart renders a deadlock counterexample.
func TestSequenceChart(t *testing.T) {
	p := protocols.MustLoad("MSI_class1")
	vn, n := PerMessageVN(p)
	sys, err := New(Config{Protocol: p, Caches: 2, Dirs: 1, Addrs: 1, VN: vn, NumVNs: n})
	if err != nil {
		t.Fatal(err)
	}
	res := mc.Check(sys, mc.Options{Strategy: mc.BFS, MaxStates: 500_000})
	if res.Outcome != mc.Deadlock {
		t.Fatalf("expected deadlock, got %v", res)
	}
	chart := sys.SequenceChart(res.Trace, 12)
	if !strings.Contains(chart, "C0") || !strings.Contains(chart, "D0") {
		t.Fatalf("chart header missing:\n%s", chart)
	}
	if !strings.Contains(chart, "elided") && len(res.Trace) > 12 {
		t.Error("long trace not elided")
	}
	if !strings.Contains(chart, "SM_A") {
		t.Errorf("deadlock states not visible:\n%s", chart)
	}
}
