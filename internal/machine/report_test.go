package machine

import (
	"strings"
	"testing"

	"minvn/internal/analysis"
	"minvn/internal/protocols"
)

// TestDeadlockReportFig3: the report of the Fig. 3 wedged state
// annotates every in-flight Fwd-GetM with its VN and queue position,
// derives the same-name queues edges, and closes the blocking cycle.
func TestDeadlockReportFig3(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 3, 2, 2, "permsg")
	state := buildFig3(t, sys)
	an := analysis.Analyze(protocols.MustLoad("MSI_blocking_cache"))

	rep := sys.DeadlockReport(state, an.Waits)
	if len(rep.Blocked) != 2 {
		t.Fatalf("blocked heads = %d, want 2", len(rep.Blocked))
	}

	// Four Fwd-GetM in flight: two stalled heads, two queued behind.
	fwd := rep.Positions("Fwd-GetM")
	if len(fwd) != 4 {
		t.Fatalf("Fwd-GetM instances = %d, want 4\n%s", len(fwd), rep)
	}
	stalled, queued := 0, 0
	for _, m := range fwd {
		if m.Stalled {
			stalled++
			if m.Pos != 0 {
				t.Errorf("stalled head at pos %d: %+v", m.Pos, m)
			}
		} else if m.Pos == 1 {
			queued++
		}
		if m.Queue == "" || !strings.Contains(m.Queue, ".vn") {
			t.Errorf("message without a queue annotation: %+v", m)
		}
	}
	if stalled != 2 || queued != 2 {
		t.Fatalf("stalled/queued = %d/%d, want 2/2\n%s", stalled, queued, rep)
	}

	// Same-name queueing produces a Fwd-GetM self edge and therefore a
	// self cycle — the Class 2 signature, now with concrete queues.
	var sawQueues bool
	for _, e := range rep.Edges {
		if e.Kind == "queues" {
			sawQueues = true
			if e.From != "Fwd-GetM" || e.To != "Fwd-GetM" || e.Where == "" {
				t.Errorf("unexpected queues edge %+v", e)
			}
		}
	}
	if !sawQueues {
		t.Fatalf("no queues edges:\n%s", rep)
	}
	if len(rep.Cycle) == 0 {
		t.Fatalf("no blocking cycle found:\n%s", rep)
	}
	cyc := strings.Join(rep.Cycle, ",")
	if !strings.Contains(cyc, "Fwd-GetM") {
		t.Fatalf("cycle %q misses Fwd-GetM", cyc)
	}
	if rep.VN["Fwd-GetM"] < 0 {
		t.Fatalf("Fwd-GetM VN missing: %v", rep.VN)
	}

	out := rep.String()
	for _, want := range []string{"stalled head", "blocking cycle:", "Fwd-GetM"} {
		if !strings.Contains(out, want) {
			t.Errorf("narrative misses %q:\n%s", want, out)
		}
	}

	dot := rep.DOT()
	for _, want := range []string{"digraph deadlock", "\"Fwd-GetM\"", "color=red", "style=dashed"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output misses %q:\n%s", want, dot)
		}
	}
}

// TestDeadlockReportCleanState: an unblocked state yields no edges and
// no cycle.
func TestDeadlockReportCleanState(t *testing.T) {
	sys := newSys(t, "MSI_blocking_cache", 2, 1, 1, "permsg")
	an := analysis.Analyze(protocols.MustLoad("MSI_blocking_cache"))
	rep := sys.DeadlockReport(sys.Initial()[0], an.Waits)
	if len(rep.Messages) != 0 || len(rep.Edges) != 0 || rep.Cycle != nil {
		t.Fatalf("initial-state report not clean:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "starvation, not a queue cycle") {
		t.Error("empty report narrative missing")
	}
}
