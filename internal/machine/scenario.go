package machine

import (
	"fmt"
	"strings"

	"minvn/internal/protocol"
)

// Scenario drives a system deterministically, one chosen rule at a
// time — the tool for replaying concrete executions such as the
// paper's Fig. 3 deadlock. Each step selects an enabled rule by
// predicate; the scenario records a readable log.
type Scenario struct {
	sys   *System
	state []byte
	log   []string
}

// NewScenario starts a scenario at the system's initial state.
func NewScenario(sys *System) *Scenario {
	return &Scenario{sys: sys, state: sys.Initial()[0]}
}

// State returns the current encoded state.
func (sc *Scenario) State() []byte { return sc.state }

// Log returns the step log.
func (sc *Scenario) Log() []string { return append([]string(nil), sc.log...) }

// System returns the underlying system.
func (sc *Scenario) System() *System { return sc.sys }

// step finds the unique enabled rule matching pred and fires it.
func (sc *Scenario) step(desc string, pred func(Rule) bool) error {
	rules, err := sc.sys.EnabledRules(sc.state)
	if err != nil {
		return fmt.Errorf("scenario %q: %w", desc, err)
	}
	var match *Rule
	for i := range rules {
		if pred(rules[i]) {
			if match != nil {
				// Multiple plans of the same logical step: take the
				// first (buffer choice is immaterial to a replay).
				break
			}
			match = &rules[i]
		}
	}
	if match == nil {
		return fmt.Errorf("scenario %q: no enabled rule matches (state:\n%s)",
			desc, sc.sys.Describe(sc.state))
	}
	next, err := sc.sys.Apply(sc.state, *match)
	if err != nil {
		return fmt.Errorf("scenario %q: %w", desc, err)
	}
	sc.state = next
	sc.log = append(sc.log, fmt.Sprintf("%-40s %s", desc, match))
	return nil
}

// Core fires a processor event at a cache.
func (sc *Scenario) Core(cache, addr int, ev protocol.CoreEvent) error {
	return sc.step(
		fmt.Sprintf("cache %d: %s a%d", cache, ev, addr),
		func(r Rule) bool {
			return r.Kind == RuleCore && r.Cache == cache && r.Addr == addr && r.Core == ev
		})
}

// DeliverTo pumps deliveries until the named message for addr reaches
// endpoint dst's input FIFO (at most the number of in-flight messages
// of steps).
func (sc *Scenario) DeliverTo(msgName string, addr, dst int) error {
	idx, ok := sc.sys.msgIdx[msgName]
	if !ok {
		return fmt.Errorf("scenario: unknown message %q", msgName)
	}
	limit := sc.sys.InFlight(sc.state) + 1
	for i := 0; i < limit; i++ {
		st := sc.sys.decode(sc.state)
		// Already delivered?
		vn := sc.sys.vnOf[idx]
		for _, m := range st.net.Local[dst][vn] {
			if m.Name == idx && int(m.Addr) == addr {
				return nil
			}
		}
		// Find a global buffer whose head is the wanted message.
		found := false
		for buf := 0; buf < 2 && !found; buf++ {
			q := st.net.Global[vn][buf]
			if len(q) > 0 && q[0].Name == idx && int(q[0].Addr) == addr && int(q[0].Dst) == dst {
				found = true
				if err := sc.step(
					fmt.Sprintf("deliver %s a%d to ep%d", msgName, addr, dst),
					func(r Rule) bool {
						return r.Kind == RuleDeliver && r.VN == vn && r.Buf == buf
					}); err != nil {
					return err
				}
			}
		}
		if !found {
			return fmt.Errorf("scenario: %s for a%d toward ep%d is not at any buffer head (state:\n%s)",
				msgName, addr, dst, sc.sys.Describe(sc.state))
		}
	}
	return nil
}

// Process consumes the head of endpoint ep's input FIFO on the VN of
// msgName, checking the head is that message for addr.
func (sc *Scenario) Process(ep int, msgName string, addr int) error {
	idx, ok := sc.sys.msgIdx[msgName]
	if !ok {
		return fmt.Errorf("scenario: unknown message %q", msgName)
	}
	vn := sc.sys.vnOf[idx]
	st := sc.sys.decode(sc.state)
	head, ok2 := st.net.Head(ep, vn)
	if !ok2 || head.Name != idx || int(head.Addr) != addr {
		return fmt.Errorf("scenario: ep%d VN%d head is not %s a%d (state:\n%s)",
			ep, vn, msgName, addr, sc.sys.Describe(sc.state))
	}
	return sc.step(
		fmt.Sprintf("ep%d processes %s a%d", ep, msgName, addr),
		func(r Rule) bool {
			return r.Kind == RuleProcess && r.Endpoint == ep && r.PVN == vn
		})
}

// Handle delivers msgName for addr to ep and processes it.
func (sc *Scenario) Handle(ep int, msgName string, addr int) error {
	if err := sc.DeliverTo(msgName, addr, ep); err != nil {
		return err
	}
	return sc.Process(ep, msgName, addr)
}

// ProcessVia is Process with all outgoing messages directed into
// global buffer buf — the lever for scripting specific network
// reorderings (the Fig. 3 replay interleaves two generations of
// forwards through different buffers).
func (sc *Scenario) ProcessVia(ep int, msgName string, addr, buf int) error {
	idx, ok := sc.sys.msgIdx[msgName]
	if !ok {
		return fmt.Errorf("scenario: unknown message %q", msgName)
	}
	vn := sc.sys.vnOf[idx]
	st := sc.sys.decode(sc.state)
	head, ok2 := st.net.Head(ep, vn)
	if !ok2 || head.Name != idx || int(head.Addr) != addr {
		return fmt.Errorf("scenario: ep%d VN%d head is not %s a%d (state:\n%s)",
			ep, vn, msgName, addr, sc.sys.Describe(sc.state))
	}
	return sc.step(
		fmt.Sprintf("ep%d processes %s a%d via buf%d", ep, msgName, addr, buf),
		func(r Rule) bool {
			if r.Kind != RuleProcess || r.Endpoint != ep || r.PVN != vn {
				return false
			}
			for _, b := range r.Plan {
				if b != buf {
					return false
				}
			}
			return true
		})
}

// HandleVia delivers msgName for addr to ep and processes it, routing
// the resulting sends into global buffer buf.
func (sc *Scenario) HandleVia(ep int, msgName string, addr, buf int) error {
	if err := sc.DeliverTo(msgName, addr, ep); err != nil {
		return err
	}
	return sc.ProcessVia(ep, msgName, addr, buf)
}

// Stuck reports whether the current state has no enabled rules while
// not quiescent — a deadlock.
func (sc *Scenario) Stuck() (bool, error) {
	rules, err := sc.sys.EnabledRules(sc.state)
	if err != nil {
		return false, err
	}
	return len(rules) == 0 && !sc.sys.Quiescent(sc.state), nil
}

// StalledHeads lists input-FIFO heads whose processing is currently
// stalled, as "ep3 VN0: Fwd-GetM a1" strings — the visible footprint
// of a (potential) deadlock.
func (sc *Scenario) StalledHeads() []string {
	st := sc.sys.decode(sc.state)
	var out []string
	for ep := 0; ep < sc.sys.endpoints; ep++ {
		for vn := 0; vn < sc.sys.net.NumVNs; vn++ {
			m, ok := st.net.Head(ep, vn)
			if !ok {
				continue
			}
			ctrl, stateName := sc.sys.ctrlAt(st, ep, int(m.Addr))
			ev := sc.sys.resolveEvent(st, ep, m)
			t := lookup(ctrl, stateName, ev)
			if t != nil && t.Stall {
				out = append(out, fmt.Sprintf("ep%d VN%d: %s a%d stalled in %s",
					ep, vn, sc.sys.msgNames[m.Name], m.Addr, stateName))
			}
		}
	}
	return out
}

// Describe renders the current state.
func (sc *Scenario) Describe() string { return sc.sys.Describe(sc.state) }

// FormatLog renders the step log.
func (sc *Scenario) FormatLog() string { return strings.Join(sc.log, "\n") }
