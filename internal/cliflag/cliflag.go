// Package cliflag factors the telemetry flag set shared by the repo's
// CLIs (vnverify, vntable, vnbench, vnfuzz, vnexplain): live progress,
// JSON run artifacts, pprof, the flight recorder, and per-VN occupancy
// profiling. Each command registers the subset it supports on its flag
// set and gets one Telemetry value carrying the parsed knobs plus the
// helpers that turn them into mc.Options wiring.
package cliflag

import (
	"flag"
	"fmt"
	"io"
	"strings"
	"time"

	"minvn/internal/mc"
	"minvn/internal/obs"
	"minvn/internal/obs/ledger"
	"minvn/internal/obs/trace"
)

// Flags selects which telemetry flags Register defines.
type Flags uint

const (
	// FlagProgress defines -progress, -progress-every, and
	// -progress-interval.
	FlagProgress Flags = 1 << iota
	// FlagStatsJSON defines -stats-json.
	FlagStatsJSON
	// FlagPprof defines -pprof.
	FlagPprof
	// FlagTrace defines -trace-out, -trace-lane-cap, and -trace-sample.
	FlagTrace
	// FlagOccupancy defines -occupancy.
	FlagOccupancy
	// FlagLedger defines -ledger.
	FlagLedger
	// FlagDist defines -peers, the worker fleet for -engine dist.
	FlagDist

	// FlagAll registers the whole set.
	FlagAll = FlagProgress | FlagStatsJSON | FlagPprof | FlagTrace | FlagOccupancy | FlagLedger | FlagDist
)

// Telemetry carries the parsed telemetry knobs for one command.
type Telemetry struct {
	Progress         bool
	ProgressEvery    int
	ProgressInterval time.Duration

	StatsJSON string
	Ledger    string
	PprofAddr string

	TraceOut     string
	TraceLaneCap int
	TraceSample  int

	Occupancy bool

	// PeerList is the raw -peers value (comma-separated base URLs of
	// vnworkerd daemons); see Peers.
	PeerList string

	rec *trace.Recorder
}

// Register defines the selected telemetry flags on fs and returns the
// Telemetry they parse into.
func Register(fs *flag.FlagSet, which Flags) *Telemetry {
	t := &Telemetry{}
	if which&FlagProgress != 0 {
		fs.BoolVar(&t.Progress, "progress", false, "print live search progress to stderr")
		fs.IntVar(&t.ProgressEvery, "progress-every", 50_000, "progress snapshot every N stored states")
		fs.DurationVar(&t.ProgressInterval, "progress-interval", 5*time.Second, "progress snapshot every wall-clock interval (0 = count-only)")
	}
	if which&FlagStatsJSON != 0 {
		fs.StringVar(&t.StatsJSON, "stats-json", "", "write a machine-readable JSON run artifact to this file")
	}
	if which&FlagPprof != 0 {
		fs.StringVar(&t.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	}
	if which&FlagTrace != 0 {
		fs.StringVar(&t.TraceOut, "trace-out", "", "record a flight-recorder trace of the run and write Chrome trace JSON (Perfetto-loadable) to this file")
		fs.IntVar(&t.TraceLaneCap, "trace-lane-cap", 0, "events retained per trace lane (0 = default)")
		fs.IntVar(&t.TraceSample, "trace-sample", 0, "record only every Nth span per lane (0 or 1 = all)")
	}
	if which&FlagOccupancy != 0 {
		fs.BoolVar(&t.Occupancy, "occupancy", false, "aggregate per-VN queue-depth histograms across stored states")
	}
	if which&FlagLedger != 0 {
		fs.StringVar(&t.Ledger, "ledger", "", "append this run's artifact to the content-addressed run ledger at this path")
	}
	if which&FlagDist != 0 {
		fs.StringVar(&t.PeerList, "peers", "", "comma-separated worker URLs for -engine dist (e.g. http://h1:9410,http://h2:9410); empty spawns -workers loopback workers")
	}
	return t
}

// Peers splits -peers into worker base URLs, dropping empty elements
// so trailing commas are harmless. Nil when the flag is unset, which
// tells the distributed coordinator to spawn loopback workers.
func (t *Telemetry) Peers() []string {
	var out []string
	for _, p := range strings.Split(t.PeerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// WantArtifact reports whether the command should build a run artifact
// at all: either surface (-stats-json file, -ledger history) needs one.
func (t *Telemetry) WantArtifact() bool {
	return t.StatsJSON != "" || t.Ledger != ""
}

// WriteStats writes the run artifact to -stats-json, announcing the
// path on stdout — the write/error path every CLI used to duplicate.
// A no-op when the flag is unset.
func (t *Telemetry) WriteStats(art *obs.Artifact, stdout io.Writer) error {
	if t.StatsJSON == "" || art == nil {
		return nil
	}
	if err := art.WriteFile(t.StatsJSON); err != nil {
		return fmt.Errorf("stats-json: %w", err)
	}
	fmt.Fprintf(stdout, "wrote %s\n", t.StatsJSON)
	return nil
}

// AppendLedger appends the run artifact to the -ledger history,
// overriding the artifact's generic metrics with the typed final
// snapshot when the caller has one. Dedup is announced rather than
// hidden: re-recording an identical run is normal across replicas.
// A no-op when the flag is unset.
func (t *Telemetry) AppendLedger(art *obs.Artifact, snap *mc.Snapshot, stdout io.Writer) error {
	if t.Ledger == "" || art == nil {
		return nil
	}
	l, err := ledger.Open(t.Ledger)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	defer l.Close()
	rec := ledger.FromArtifact(art)
	if snap != nil {
		rec.Snapshot = snap
	}
	id, dup, err := l.Append(rec)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	if dup {
		fmt.Fprintf(stdout, "ledger: %s already recorded (%s)\n", id[:12], t.Ledger)
	} else {
		fmt.Fprintf(stdout, "ledger: recorded %s (%s)\n", id[:12], t.Ledger)
	}
	return nil
}

// Finish runs both artifact sinks: the -stats-json file and the
// -ledger run history.
func (t *Telemetry) Finish(art *obs.Artifact, snap *mc.Snapshot, stdout io.Writer) error {
	if err := t.WriteStats(art, stdout); err != nil {
		return err
	}
	return t.AppendLedger(art, snap, stdout)
}

// StartPprof serves net/http/pprof when -pprof was given, announcing
// the URL on stderr. A no-op otherwise.
func (t *Telemetry) StartPprof(stderr io.Writer) error {
	if t.PprofAddr == "" {
		return nil
	}
	addr, err := obs.ServePprof(t.PprofAddr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "pprof: http://%s/debug/pprof/\n", addr)
	return nil
}

// Configure wires progress reporting and the flight recorder into a
// search's options. Occupancy observers depend on the model and stay
// with the caller (see machine.System.NewOccupancyProfiler).
func (t *Telemetry) Configure(opts *mc.Options, stderr io.Writer) {
	if t.Progress {
		opts.Progress = func(s mc.Snapshot) { fmt.Fprintln(stderr, s) }
		opts.ProgressEvery = t.ProgressEvery
		opts.ProgressInterval = t.ProgressInterval
	}
	if opts.Trace == nil {
		opts.Trace = t.Recorder()
	}
}

// Recorder lazily builds the flight recorder; nil unless -trace-out
// was given, so it can be assigned into mc.Options unconditionally.
func (t *Telemetry) Recorder() *trace.Recorder {
	if t.TraceOut == "" {
		return nil
	}
	if t.rec == nil {
		t.rec = trace.New(trace.Config{
			LaneCapacity: t.TraceLaneCap,
			SampleEvery:  t.TraceSample,
		})
	}
	return t.rec
}

// WriteTrace exports the recorded trace to -trace-out, announcing the
// path on stdout. A no-op when tracing was never turned on.
func (t *Telemetry) WriteTrace(stdout io.Writer) error {
	if t.rec == nil {
		return nil
	}
	if err := t.rec.WriteFile(t.TraceOut); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", t.TraceOut)
	return nil
}
