package cliflag

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minvn/internal/mc"
	"minvn/internal/obs"
	"minvn/internal/obs/ledger"
	"minvn/internal/obs/trace/tracetest"
)

// TestRegisterSubsets: each Flags bit defines exactly its own flags,
// so a command that opts out of (say) occupancy never exposes the
// flag.
func TestRegisterSubsets(t *testing.T) {
	cases := []struct {
		which   Flags
		defined []string
		absent  []string
	}{
		{FlagProgress, []string{"progress", "progress-every", "progress-interval"}, []string{"stats-json", "pprof", "trace-out", "occupancy"}},
		{FlagStatsJSON, []string{"stats-json"}, []string{"progress", "trace-out"}},
		{FlagPprof, []string{"pprof"}, []string{"stats-json"}},
		{FlagTrace, []string{"trace-out", "trace-lane-cap", "trace-sample"}, []string{"occupancy"}},
		{FlagOccupancy, []string{"occupancy"}, []string{"trace-out"}},
		{FlagLedger, []string{"ledger"}, []string{"stats-json"}},
		{FlagAll, []string{"progress", "progress-every", "progress-interval", "stats-json", "pprof", "trace-out", "trace-lane-cap", "trace-sample", "occupancy", "ledger"}, nil},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		Register(fs, tc.which)
		for _, name := range tc.defined {
			if fs.Lookup(name) == nil {
				t.Errorf("Register(%b) missing -%s", tc.which, name)
			}
		}
		for _, name := range tc.absent {
			if fs.Lookup(name) != nil {
				t.Errorf("Register(%b) unexpectedly defines -%s", tc.which, name)
			}
		}
	}
}

func TestParseDefaultsAndValues(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tel := Register(fs, FlagAll)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if tel.Progress || tel.ProgressEvery != 50_000 || tel.ProgressInterval != 5*time.Second {
		t.Errorf("progress defaults: %+v", tel)
	}
	if tel.StatsJSON != "" || tel.PprofAddr != "" || tel.TraceOut != "" || tel.Occupancy {
		t.Errorf("output defaults: %+v", tel)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	tel = Register(fs, FlagAll)
	err := fs.Parse([]string{"-progress", "-progress-every", "10", "-progress-interval", "1s",
		"-stats-json", "s.json", "-trace-out", "t.json", "-trace-lane-cap", "32",
		"-trace-sample", "4", "-occupancy"})
	if err != nil {
		t.Fatal(err)
	}
	if !tel.Progress || tel.ProgressEvery != 10 || tel.ProgressInterval != time.Second ||
		tel.StatsJSON != "s.json" || tel.TraceOut != "t.json" ||
		tel.TraceLaneCap != 32 || tel.TraceSample != 4 || !tel.Occupancy {
		t.Errorf("parsed values: %+v", tel)
	}
}

// TestConfigure: progress wiring only happens when asked for, and the
// recorder is only built when -trace-out was given.
func TestConfigure(t *testing.T) {
	tel := &Telemetry{}
	var opts mc.Options
	tel.Configure(&opts, io.Discard)
	if opts.Progress != nil || opts.Trace != nil {
		t.Errorf("idle telemetry configured something: %+v", opts)
	}
	if tel.Recorder() != nil {
		t.Error("Recorder without -trace-out should be nil")
	}
	if err := tel.WriteTrace(io.Discard); err != nil {
		t.Errorf("WriteTrace without recorder: %v", err)
	}

	var buf bytes.Buffer
	tel = &Telemetry{Progress: true, ProgressEvery: 7, ProgressInterval: time.Minute,
		TraceOut: filepath.Join(t.TempDir(), "trace.json")}
	opts = mc.Options{}
	tel.Configure(&opts, &buf)
	if opts.Progress == nil || opts.ProgressEvery != 7 || opts.ProgressInterval != time.Minute {
		t.Errorf("progress not wired: %+v", opts)
	}
	opts.Progress(mc.Snapshot{States: 5})
	if buf.Len() == 0 {
		t.Error("progress callback wrote nothing")
	}
	if opts.Trace == nil || opts.Trace != tel.Recorder() {
		t.Error("recorder not wired into options")
	}
	// A caller-supplied recorder wins over the flag-built one.
	pre := mc.Options{Trace: opts.Trace}
	tel.Configure(&pre, io.Discard)
	if pre.Trace != opts.Trace {
		t.Error("Configure replaced a caller-supplied recorder")
	}
}

// TestWriteTrace runs a real checked search through the flag-built
// recorder and validates the exported file as Chrome trace JSON.
func TestWriteTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tel := &Telemetry{TraceOut: path}
	lane := tel.Recorder().Lane("test-lane")
	sp := lane.Start("work")
	sp.End()
	lane.Instant("done")

	var out bytes.Buffer
	if err := tel.WriteTrace(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), path) {
		t.Errorf("WriteTrace did not announce the path: %q", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	events := tracetest.Validate(t, data)
	if len(tracetest.Named(events, "work")) == 0 {
		t.Errorf("exported trace misses the recorded span")
	}
}

// TestFinishSinks: the shared artifact-write helper must honor both
// sinks — the -stats-json file and the -ledger history — and dedup a
// re-recorded identical run.
func TestFinishSinks(t *testing.T) {
	dir := t.TempDir()
	statsPath := filepath.Join(dir, "stats.json")
	ledgerPath := filepath.Join(dir, "ledger.jsonl")
	tel := &Telemetry{StatsJSON: statsPath, Ledger: ledgerPath}
	if !tel.WantArtifact() {
		t.Fatal("WantArtifact false with both sinks set")
	}

	art := obs.NewArtifact("vnverify")
	art.Params["protocol"] = "MSI"
	art.Outcome = "ok"
	snap := &mc.Snapshot{Strategy: "seq", States: 3, StatesPerSec: 42}

	var out bytes.Buffer
	if err := tel.Finish(art, snap, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(statsPath); err != nil {
		t.Fatalf("stats-json not written: %v", err)
	}
	if !strings.Contains(out.String(), "ledger: recorded") {
		t.Fatalf("ledger append not announced: %q", out.String())
	}

	l, err := ledger.Open(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	entries := l.Entries()
	l.Close()
	if len(entries) != 1 {
		t.Fatalf("ledger has %d records, want 1", len(entries))
	}
	rec := entries[0].Record
	if rec.Tool != "vnverify" || rec.Snapshot == nil || rec.Snapshot.States != 3 {
		t.Fatalf("record = %+v snapshot = %+v", rec, rec.Snapshot)
	}

	// Re-finishing the identical artifact dedups (acceptance: appending
	// the same artifact twice yields one record). Created is part of the
	// record, so reuse the same artifact verbatim.
	out.Reset()
	if err := tel.Finish(art, snap, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "already recorded") {
		t.Fatalf("dedup not announced: %q", out.String())
	}
	l2, err := ledger.Open(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	n := l2.Len()
	l2.Close()
	if n != 1 {
		t.Fatalf("ledger grew to %d records on duplicate append", n)
	}
}

// Unset sinks are no-ops, so CLIs call Finish unconditionally.
func TestFinishNoSinks(t *testing.T) {
	tel := &Telemetry{}
	if tel.WantArtifact() {
		t.Fatal("WantArtifact true with no sinks")
	}
	var out bytes.Buffer
	if err := tel.Finish(obs.NewArtifact("x"), nil, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("no-op Finish produced output: %q", out.String())
	}
}
